#!/usr/bin/env python3
"""Checks the bench_micro smoke run (tools/check.sh --bench-smoke).

Asserts the observability overhead bound: with no sink configured, the
per-operator instrumentation (one disabled-Span construction per operator
invocation) must cost <2% of a representative query (BM_ScanFilter/250).
Asserts the group-commit bound: at 8 concurrent writers the WAL's
piggybacked fsync must recover >= 3x the single-writer fsync-on-commit
throughput (DESIGN.md §9). Also validates that the LDV_METRICS_OUT
snapshot bench_micro wrote is a well-formed metrics JSON document.

Given a third argument (the BENCH_PARALLEL.json trajectory the parallel
benchmarks emit), asserts the morsel-driven scaling bound (DESIGN.md §10):
with >= 4 hardware threads, BM_ParallelScan plus at least one of
BM_ParallelHashJoin / BM_ParallelAgg must reach >= 2.5x the --threads 1
throughput at 8 threads. On boxes without enough cores the scaling bound is
physically unreachable, so it is SKIPPED (loudly) and only a no-regression
bound is enforced: parallel execution at 8 threads must keep >= 0.7x the
serial throughput (the morsel machinery must not tax a serial box).

Given a fourth argument (the governance-latency JSON the LDV_BENCH_GOVERNANCE_OUT
probe emits), asserts the resource-governance responsiveness bound
(DESIGN.md §11): a cancel landing mid-scan on the 150k-row table must
unwind within 100 ms, and a statement deadline must not overshoot by more
than 100 ms, at both 1 and 8 threads.

Given a fifth argument (the BENCH_CONCURRENT.json curve bench_concurrent
emits), asserts the inter-query parallelism bound (DESIGN.md §12): with
>= 4 hardware threads, read-only QPS at 8 clients must reach >= 3x the
single-client QPS. On boxes without enough cores the bound is physically
unreachable, so it is SKIPPED (loudly) and only a no-regression floor is
enforced: 8 clients must keep >= 0.7x the single-client QPS (the MVCC
locking must not tax a serial box). The mixed workload must additionally
show both reads and writes making progress.

Given a sixth argument (the BENCH_PREPARED.json comparison bench_prepared
emits), asserts the repeated-statement bound (DESIGN.md §13): with >= 4
hardware threads, EXECUTE against a prepared handle (bind-and-execute
through the shared plan cache) must reach >= 2x the QPS of re-sending the
same SELECT as literal SQL. On smaller/noisier boxes the 2x bound is
SKIPPED (loudly) and only a no-regression floor is enforced: EXECUTE must
keep >= 0.9x the literal QPS (the cache lookup must never cost more than
the parse/plan it saves).

Given a seventh argument (the BENCH_REPL.json summary bench_repl emits),
asserts the replication bounds (DESIGN.md §14): with >= 4 hardware
threads, failover (primary death -> promoted standby serving a write
through the multi-endpoint client) must complete within 2 s, and the hot
standby must serve reads at >= 0.8x the primary's QPS. On smaller boxes
the read-ratio bound is SKIPPED (loudly) with a relaxed 0.5x floor, and
the failover ceiling is relaxed to 10 s — a replica that takes tens of
seconds to take over is broken on any hardware.

Given an eighth argument (the BENCH_VECTOR.json comparison bench_vector
emits), asserts the vectorized-execution bound (DESIGN.md §15): with >= 4
hardware threads, the columnar kernels must run the single-threaded
scan-filter-agg pipeline at >= 2x the row engine's rows/s. On smaller or
noisier boxes the 2x bound is SKIPPED (loudly) and only a no-regression
floor is enforced: every measured kernel must keep >= 0.9x the row
engine's throughput (batching must never cost more than it saves).
"""
import json
import sys

PARALLEL_SPEEDUP = 2.5
PARALLEL_NO_REGRESSION = 0.7
# Cores needed before the 2.5x-at-8-threads bound is physically meaningful.
PARALLEL_MIN_HW = 4
# Cancel-to-return / deadline-overshoot ceiling (milliseconds).
GOVERNANCE_LATENCY_MS = 100.0
# Inter-query parallelism: read-only QPS multiple required at 8 clients.
CONCURRENT_SPEEDUP = 3.0
CONCURRENT_NO_REGRESSION = 0.7
CONCURRENT_MIN_HW = 4
# Prepared statements: EXECUTE-vs-literal QPS multiple (plan-cache savings).
PREPARED_SPEEDUP = 2.0
PREPARED_NO_REGRESSION = 0.9
PREPARED_MIN_HW = 4
# Replication: failover ceiling, standby-read floor (vs primary reads).
REPL_FAILOVER_MS = 2000.0
REPL_FAILOVER_RELAXED_MS = 10000.0
REPL_READ_RATIO = 0.8
REPL_READ_RATIO_RELAXED = 0.5
REPL_MIN_HW = 4
# Vectorized execution: columnar-vs-row rows/s multiple on scan-filter-agg.
VECTOR_SPEEDUP = 2.0
VECTOR_NO_REGRESSION = 0.9
VECTOR_MIN_HW = 4

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# Generous upper bound on operator invocations per query; the scan-filter
# plan actually executes three operators (Scan, Filter, Project) once each.
OPS_PER_QUERY = 16


def real_ns(benchmarks, name):
    for bench in benchmarks:
        if (bench.get("name") == name
                and bench.get("run_type", "iteration") == "iteration"):
            return bench["real_time"] * UNIT_NS[bench.get("time_unit", "ns")]
    raise SystemExit(f"bench_smoke_check: benchmark {name!r} missing from results")


def items_per_second(benchmarks, name):
    for bench in benchmarks:
        if (bench.get("name") == name
                and bench.get("run_type", "iteration") == "iteration"):
            return bench["items_per_second"]
    raise SystemExit(f"bench_smoke_check: benchmark {name!r} missing from results")


def curve_point(curve, threads):
    for point in curve:
        if point.get("threads") == threads:
            return point["items_per_second"]
    raise SystemExit(
        f"bench_smoke_check: threads={threads} point missing from curve")


def check_parallel(path):
    with open(path) as f:
        trajectory = json.load(f)
    hw = trajectory.get("hardware_threads", 1)
    curves = trajectory.get("curves", {})
    if "scan" not in curves:
        raise SystemExit(
            "bench_smoke_check: scan curve missing from " + path)
    speedups = {}
    for name, curve in sorted(curves.items()):
        serial = curve_point(curve, 1)
        eight = curve_point(curve, 8)
        speedups[name] = eight / serial
        print(f"bench_smoke_check: parallel {name}: {serial:.0f} rows/s at 1"
              f" thread, {eight:.0f} at 8 = {speedups[name]:.2f}x")
    if hw >= PARALLEL_MIN_HW:
        if speedups["scan"] < PARALLEL_SPEEDUP:
            raise SystemExit(
                f"bench_smoke_check: BM_ParallelScan reached only"
                f" {speedups['scan']:.2f}x at 8 threads"
                f" (need >= {PARALLEL_SPEEDUP}x)")
        others = [speedups[n] for n in ("hash_join", "agg") if n in speedups]
        if others and max(others) < PARALLEL_SPEEDUP:
            raise SystemExit(
                f"bench_smoke_check: neither join nor agg reached"
                f" {PARALLEL_SPEEDUP}x at 8 threads"
                f" (best {max(others):.2f}x)")
        print(f"bench_smoke_check: parallel scaling bound"
              f" ({PARALLEL_SPEEDUP}x at 8 threads) met on {hw} cores")
    else:
        print(f"bench_smoke_check: SKIPPING the {PARALLEL_SPEEDUP}x scaling"
              f" bound: only {hw} hardware thread(s) available"
              f" (needs >= {PARALLEL_MIN_HW}); enforcing no-regression only")
        for name, speedup in speedups.items():
            if speedup < PARALLEL_NO_REGRESSION:
                raise SystemExit(
                    f"bench_smoke_check: parallel {name} regressed to"
                    f" {speedup:.2f}x of serial at 8 threads on a"
                    f" {hw}-core box (floor {PARALLEL_NO_REGRESSION}x)")


def check_governance(path):
    with open(path) as f:
        probe = json.load(f)
    for bound in ("cancel_latency_ms", "deadline_overshoot_ms"):
        points = probe.get(bound)
        if not points:
            raise SystemExit(
                f"bench_smoke_check: {bound} missing from {path}")
        for threads, latency in sorted(points.items()):
            print(f"bench_smoke_check: governance {bound} {threads}:"
                  f" {latency:.1f}ms (bound {GOVERNANCE_LATENCY_MS:.0f}ms)")
            if latency > GOVERNANCE_LATENCY_MS:
                raise SystemExit(
                    f"bench_smoke_check: governance {bound} at {threads} ="
                    f" {latency:.1f}ms exceeds the"
                    f" {GOVERNANCE_LATENCY_MS:.0f}ms responsiveness bound")


def check_concurrent(path):
    with open(path) as f:
        curve = json.load(f)
    hw = curve.get("hardware_threads", 1)
    read_only = curve.get("read_only", {})
    for key in ("clients_1", "clients_8"):
        if key not in read_only:
            raise SystemExit(
                f"bench_smoke_check: read_only.{key} missing from {path}")
    single = read_only["clients_1"]
    eight = read_only["clients_8"]
    if single <= 0:
        raise SystemExit(
            "bench_smoke_check: single-client QPS is zero — no reads ran")
    ratio = eight / single
    print(f"bench_smoke_check: concurrent read-only {single:.0f} qps at 1"
          f" client, {eight:.0f} at 8 = {ratio:.2f}x")
    if hw >= CONCURRENT_MIN_HW:
        if ratio < CONCURRENT_SPEEDUP:
            raise SystemExit(
                f"bench_smoke_check: read-only QPS reached only {ratio:.2f}x"
                f" at 8 clients (need >= {CONCURRENT_SPEEDUP}x on {hw} cores)")
        print(f"bench_smoke_check: inter-query scaling bound"
              f" ({CONCURRENT_SPEEDUP}x at 8 clients) met on {hw} cores")
    else:
        print(f"bench_smoke_check: SKIPPING the {CONCURRENT_SPEEDUP}x"
              f" inter-query scaling bound: only {hw} hardware thread(s)"
              f" available (needs >= {CONCURRENT_MIN_HW}); enforcing"
              f" no-regression only")
        if ratio < CONCURRENT_NO_REGRESSION:
            raise SystemExit(
                f"bench_smoke_check: read-only QPS regressed to {ratio:.2f}x"
                f" of single-client at 8 clients on a {hw}-core box"
                f" (floor {CONCURRENT_NO_REGRESSION}x)")
    mixed = curve.get("mixed", {})
    reads = mixed.get("reads_per_sec", 0)
    writes = mixed.get("writes_per_sec", 0)
    print(f"bench_smoke_check: concurrent mixed {reads:.0f} reads/s,"
          f" {writes:.0f} writes/s at {mixed.get('clients', '?')} clients")
    if reads <= 0 or writes <= 0:
        raise SystemExit(
            "bench_smoke_check: mixed workload starved — readers and the"
            " writer must both make progress")


def check_prepared(path):
    with open(path) as f:
        comparison = json.load(f)
    hw = comparison.get("hardware_threads", 1)
    literal = comparison.get("literal_qps", 0)
    execute = comparison.get("execute_qps", 0)
    if literal <= 0 or execute <= 0:
        raise SystemExit(
            "bench_prepared: a side of the comparison ran zero statements")
    ratio = execute / literal
    print(f"bench_smoke_check: prepared {literal:.0f} literal qps,"
          f" {execute:.0f} execute qps = {ratio:.2f}x")
    if hw >= PREPARED_MIN_HW:
        if ratio < PREPARED_SPEEDUP:
            raise SystemExit(
                f"bench_smoke_check: EXECUTE reached only {ratio:.2f}x the"
                f" literal-SQL QPS (need >= {PREPARED_SPEEDUP}x on {hw} cores)")
        print(f"bench_smoke_check: repeated-statement bound"
              f" ({PREPARED_SPEEDUP}x via the plan cache) met on {hw} cores")
    else:
        print(f"bench_smoke_check: SKIPPING the {PREPARED_SPEEDUP}x"
              f" repeated-statement bound: only {hw} hardware thread(s)"
              f" available (needs >= {PREPARED_MIN_HW}); enforcing"
              f" no-regression only")
        if ratio < PREPARED_NO_REGRESSION:
            raise SystemExit(
                f"bench_smoke_check: EXECUTE regressed to {ratio:.2f}x of the"
                f" literal-SQL QPS on a {hw}-core box"
                f" (floor {PREPARED_NO_REGRESSION}x)")


def check_repl(path):
    with open(path) as f:
        summary = json.load(f)
    hw = summary.get("hardware_threads", 1)
    for field in ("write_qps", "steady_lag_mean_lsn", "steady_lag_max_lsn",
                  "failover_ms", "primary_read_qps", "standby_read_qps"):
        if field not in summary:
            raise SystemExit(
                f"bench_smoke_check: {field} missing from {path}")
    failover = summary["failover_ms"]
    primary = summary["primary_read_qps"]
    standby = summary["standby_read_qps"]
    if primary <= 0 or standby <= 0:
        raise SystemExit(
            "bench_smoke_check: a replication read side ran zero queries")
    ratio = standby / primary
    print(f"bench_smoke_check: repl {summary['write_qps']:.0f} semi-sync"
          f" writes/s (lag mean {summary['steady_lag_mean_lsn']:.2f} max"
          f" {summary['steady_lag_max_lsn']} lsn), standby reads"
          f" {ratio:.2f}x primary, failover {failover:.1f}ms")
    if hw >= REPL_MIN_HW:
        if failover > REPL_FAILOVER_MS:
            raise SystemExit(
                f"bench_smoke_check: failover took {failover:.0f}ms"
                f" (ceiling {REPL_FAILOVER_MS:.0f}ms on {hw} cores)")
        if ratio < REPL_READ_RATIO:
            raise SystemExit(
                f"bench_smoke_check: standby served only {ratio:.2f}x the"
                f" primary's read QPS (floor {REPL_READ_RATIO}x on"
                f" {hw} cores)")
        print(f"bench_smoke_check: replication bounds"
              f" (failover <= {REPL_FAILOVER_MS:.0f}ms, standby reads"
              f" >= {REPL_READ_RATIO}x) met on {hw} cores")
    else:
        print(f"bench_smoke_check: SKIPPING the strict replication bounds:"
              f" only {hw} hardware thread(s) available"
              f" (needs >= {REPL_MIN_HW}); enforcing relaxed floors only")
        if failover > REPL_FAILOVER_RELAXED_MS:
            raise SystemExit(
                f"bench_smoke_check: failover took {failover:.0f}ms even"
                f" against the relaxed {REPL_FAILOVER_RELAXED_MS:.0f}ms"
                f" ceiling — promotion is broken on any hardware")
        if ratio < REPL_READ_RATIO_RELAXED:
            raise SystemExit(
                f"bench_smoke_check: standby served only {ratio:.2f}x the"
                f" primary's read QPS on a {hw}-core box"
                f" (relaxed floor {REPL_READ_RATIO_RELAXED}x)")


def check_vector(path):
    with open(path) as f:
        comparison = json.load(f)
    hw = comparison.get("hardware_threads", 1)
    kernels = comparison.get("kernels", {})
    if "scan_filter_agg" not in kernels:
        raise SystemExit(
            f"bench_smoke_check: scan_filter_agg kernel missing from {path}")
    for name, kernel in sorted(kernels.items()):
        print(f"bench_smoke_check: vector {name}:"
              f" {kernel['vectorized_rps']:.0f} vectorized rows/s vs"
              f" {kernel['row_rps']:.0f} row = {kernel['ratio']:.2f}x")
    ratio = kernels["scan_filter_agg"]["ratio"]
    if hw >= VECTOR_MIN_HW:
        if ratio < VECTOR_SPEEDUP:
            raise SystemExit(
                f"bench_smoke_check: vectorized scan-filter-agg reached only"
                f" {ratio:.2f}x the row engine (need >= {VECTOR_SPEEDUP}x"
                f" on {hw} cores)")
        print(f"bench_smoke_check: vectorized-execution bound"
              f" ({VECTOR_SPEEDUP}x scan-filter-agg) met on {hw} cores")
    else:
        print(f"bench_smoke_check: SKIPPING the {VECTOR_SPEEDUP}x vectorized"
              f" scan-filter-agg bound: only {hw} hardware thread(s)"
              f" available (needs >= {VECTOR_MIN_HW}); enforcing"
              f" no-regression only")
        for name, kernel in sorted(kernels.items()):
            if kernel["ratio"] < VECTOR_NO_REGRESSION:
                raise SystemExit(
                    f"bench_smoke_check: vectorized {name} regressed to"
                    f" {kernel['ratio']:.2f}x of the row engine on a"
                    f" {hw}-core box (floor {VECTOR_NO_REGRESSION}x)")


def main():
    if len(sys.argv) not in (3, 4, 5, 6, 7, 8, 9):
        raise SystemExit(
            "usage: bench_smoke_check.py BENCH_JSON METRICS_JSON"
            " [PARALLEL_JSON [GOVERNANCE_JSON [CONCURRENT_JSON"
            " [PREPARED_JSON [REPL_JSON [VECTOR_JSON]]]]]]")
    with open(sys.argv[1]) as f:
        benchmarks = json.load(f)["benchmarks"]
    span_ns = real_ns(benchmarks, "BM_ObsSpanDisabled")
    query_ns = real_ns(benchmarks, "BM_ScanFilter/250")
    overhead_ns = span_ns * OPS_PER_QUERY
    bound_ns = 0.02 * query_ns
    print(f"bench_smoke_check: disabled span {span_ns:.1f}ns x {OPS_PER_QUERY}"
          f" ops = {overhead_ns:.0f}ns vs 2% of query"
          f" {query_ns:.0f}ns = {bound_ns:.0f}ns")
    if overhead_ns >= bound_ns:
        raise SystemExit(
            "bench_smoke_check: disabled-instrumentation overhead bound violated")

    single = items_per_second(
        benchmarks, "BM_WalCommit/sync:2/real_time/threads:1")
    grouped = items_per_second(
        benchmarks, "BM_WalCommit/sync:2/real_time/threads:8")
    ratio = grouped / single
    print(f"bench_smoke_check: group commit {grouped:.0f} commits/s at 8"
          f" writers vs {single:.0f} single-writer = {ratio:.2f}x (need >= 3x)")
    if ratio < 3.0:
        raise SystemExit(
            "bench_smoke_check: group commit recovered < 3x of the"
            " fsync-on-commit throughput at 8 writers")

    with open(sys.argv[2]) as f:
        metrics = json.load(f)
    for section in ("counters", "gauges", "histograms"):
        if section not in metrics:
            raise SystemExit(
                f"bench_smoke_check: metrics snapshot missing {section!r}")
    histogram = metrics["histograms"].get("bench.latency")
    if not histogram or not histogram.get("buckets"):
        raise SystemExit(
            "bench_smoke_check: bench.latency histogram missing from snapshot")

    if len(sys.argv) >= 4:
        check_parallel(sys.argv[3])
    if len(sys.argv) >= 5:
        check_governance(sys.argv[4])
    if len(sys.argv) >= 6:
        check_concurrent(sys.argv[5])
    if len(sys.argv) >= 7:
        check_prepared(sys.argv[6])
    if len(sys.argv) >= 8:
        check_repl(sys.argv[7])
    if len(sys.argv) >= 9:
        check_vector(sys.argv[8])
    print("bench_smoke_check: ok")


if __name__ == "__main__":
    main()
