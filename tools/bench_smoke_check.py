#!/usr/bin/env python3
"""Checks the bench_micro smoke run (tools/check.sh --bench-smoke).

Asserts the observability overhead bound: with no sink configured, the
per-operator instrumentation (one disabled-Span construction per operator
invocation) must cost <2% of a representative query (BM_ScanFilter/250).
Asserts the group-commit bound: at 8 concurrent writers the WAL's
piggybacked fsync must recover >= 3x the single-writer fsync-on-commit
throughput (DESIGN.md §9). Also validates that the LDV_METRICS_OUT
snapshot bench_micro wrote is a well-formed metrics JSON document.
"""
import json
import sys

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# Generous upper bound on operator invocations per query; the scan-filter
# plan actually executes three operators (Scan, Filter, Project) once each.
OPS_PER_QUERY = 16


def real_ns(benchmarks, name):
    for bench in benchmarks:
        if (bench.get("name") == name
                and bench.get("run_type", "iteration") == "iteration"):
            return bench["real_time"] * UNIT_NS[bench.get("time_unit", "ns")]
    raise SystemExit(f"bench_smoke_check: benchmark {name!r} missing from results")


def items_per_second(benchmarks, name):
    for bench in benchmarks:
        if (bench.get("name") == name
                and bench.get("run_type", "iteration") == "iteration"):
            return bench["items_per_second"]
    raise SystemExit(f"bench_smoke_check: benchmark {name!r} missing from results")


def main():
    if len(sys.argv) != 3:
        raise SystemExit("usage: bench_smoke_check.py BENCH_JSON METRICS_JSON")
    with open(sys.argv[1]) as f:
        benchmarks = json.load(f)["benchmarks"]
    span_ns = real_ns(benchmarks, "BM_ObsSpanDisabled")
    query_ns = real_ns(benchmarks, "BM_ScanFilter/250")
    overhead_ns = span_ns * OPS_PER_QUERY
    bound_ns = 0.02 * query_ns
    print(f"bench_smoke_check: disabled span {span_ns:.1f}ns x {OPS_PER_QUERY}"
          f" ops = {overhead_ns:.0f}ns vs 2% of query"
          f" {query_ns:.0f}ns = {bound_ns:.0f}ns")
    if overhead_ns >= bound_ns:
        raise SystemExit(
            "bench_smoke_check: disabled-instrumentation overhead bound violated")

    single = items_per_second(
        benchmarks, "BM_WalCommit/sync:2/real_time/threads:1")
    grouped = items_per_second(
        benchmarks, "BM_WalCommit/sync:2/real_time/threads:8")
    ratio = grouped / single
    print(f"bench_smoke_check: group commit {grouped:.0f} commits/s at 8"
          f" writers vs {single:.0f} single-writer = {ratio:.2f}x (need >= 3x)")
    if ratio < 3.0:
        raise SystemExit(
            "bench_smoke_check: group commit recovered < 3x of the"
            " fsync-on-commit throughput at 8 writers")

    with open(sys.argv[2]) as f:
        metrics = json.load(f)
    for section in ("counters", "gauges", "histograms"):
        if section not in metrics:
            raise SystemExit(
                f"bench_smoke_check: metrics snapshot missing {section!r}")
    histogram = metrics["histograms"].get("bench.latency")
    if not histogram or not histogram.get("buckets"):
        raise SystemExit(
            "bench_smoke_check: bench.latency histogram missing from snapshot")
    print("bench_smoke_check: ok")


if __name__ == "__main__":
    main()
