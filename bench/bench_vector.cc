// Vectorized-vs-row engine benchmark (DESIGN.md §15): runs the same
// queries through the columnar kernels and the row-at-a-time engine,
// single-threaded, and reports input rows per second for each. The two
// engines return bit-identical results (tests/vectorized_exec_test.cc is
// the contract); this benchmark measures what the batch representation
// buys on the hot operator shapes — scan+filter, projection arithmetic,
// hash join, grouped aggregation, DISTINCT — plus the end-to-end
// scan-filter-agg pipeline the paper's workloads spend their time in.
//
// Writes BENCH_VECTOR.json (path = argv[1], default LDV_BENCH_VECTOR_OUT,
// default "BENCH_VECTOR.json"); tools/bench_smoke_check.py enforces the
// speedup gate: >= 2x scan_filter_agg rows/s on boxes with >= 4 hardware
// threads, a loud SKIP plus a no-regression floor otherwise.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "exec/executor.h"
#include "storage/database.h"
#include "util/fsutil.h"

namespace {

using ldv::exec::ExecOptions;
using ldv::exec::Executor;

constexpr int kRows = 200'000;
constexpr int kDims = 64;
constexpr int64_t kRunNanos = 300'000'000;  // 300 ms per (query, engine)

bool Fill(Executor* exec) {
  ExecOptions options;
  options.threads = 1;
  if (!exec->Execute("CREATE TABLE t (id INT, grp INT, val DOUBLE, tag TEXT)",
                     options)
           .ok()) {
    return false;
  }
  for (int base = 0; base < kRows; base += 500) {
    std::string sql = "INSERT INTO t VALUES ";
    for (int i = base; i < base + 500; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 97) + "," +
             std::to_string(i % 1000) + ".25,'t" + std::to_string(i % 13) +
             "')";
    }
    if (!exec->Execute(sql, options).ok()) return false;
  }
  std::string dims = "CREATE TABLE d (k INT, w DOUBLE)";
  if (!exec->Execute(dims, options).ok()) return false;
  std::string insert = "INSERT INTO d VALUES ";
  for (int k = 0; k < kDims; ++k) {
    if (k > 0) insert += ",";
    insert += "(" + std::to_string(k) + "," + std::to_string(k) + ".5)";
  }
  return exec->Execute(insert, options).ok();
}

/// Input rows per second: one warmup run, then repeat until kRunNanos.
double RowsPerSec(Executor* exec, const std::string& sql, int vectorize) {
  ExecOptions options;
  options.threads = 1;  // the speedup must come from batching, not fan-out
  options.vectorize = vectorize;
  if (!exec->Execute(sql, options).ok()) {
    std::fprintf(stderr, "bench_vector: query failed: %s\n", sql.c_str());
    std::exit(1);
  }
  int64_t iters = 0;
  const int64_t start = ldv::NowNanos();
  do {
    if (!exec->Execute(sql, options).ok()) {
      std::fprintf(stderr, "bench_vector: query failed: %s\n", sql.c_str());
      std::exit(1);
    }
    ++iters;
  } while (ldv::NowNanos() - start < kRunNanos);
  const double seconds =
      static_cast<double>(ldv::NowNanos() - start) / 1e9;
  return static_cast<double>(kRows) * static_cast<double>(iters) / seconds;
}

struct Kernel {
  const char* name;
  const char* sql;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_VECTOR.json";
  if (const char* env = std::getenv("LDV_BENCH_VECTOR_OUT")) out = env;
  if (argc > 1) out = argv[1];

  ldv::storage::Database db;
  Executor exec(&db);
  if (!Fill(&exec)) {
    std::fprintf(stderr, "bench_vector: database fill failed\n");
    return 1;
  }

  const std::vector<Kernel> kernels = {
      {"scan_filter", "SELECT id FROM t WHERE val < 500 AND grp != 13"},
      {"project_arith", "SELECT id * 2 + grp, val * 0.5, val + id FROM t"},
      {"hash_join",
       "SELECT t.id, d.w FROM t, d WHERE t.grp = d.k AND t.val < 250"},
      {"group_agg",
       "SELECT grp, count(*), sum(val), min(val), max(val) FROM t GROUP BY "
       "grp"},
      {"distinct", "SELECT DISTINCT grp, tag FROM t"},
      {"scan_filter_agg",
       "SELECT grp, count(*), sum(val) FROM t WHERE val < 750 GROUP BY grp"},
  };

  ldv::Json kernels_doc = ldv::Json::MakeObject();
  for (const Kernel& kernel : kernels) {
    const double vec = RowsPerSec(&exec, kernel.sql, /*vectorize=*/1);
    const double row = RowsPerSec(&exec, kernel.sql, /*vectorize=*/-1);
    const double ratio = vec / row;
    std::printf("bench_vector: %-16s vectorized %12.0f rows/s  row %12.0f"
                " rows/s  = %.2fx\n",
                kernel.name, vec, row, ratio);
    ldv::Json entry = ldv::Json::MakeObject();
    entry.Set("vectorized_rps", ldv::Json::MakeDouble(vec));
    entry.Set("row_rps", ldv::Json::MakeDouble(row));
    entry.Set("ratio", ldv::Json::MakeDouble(ratio));
    kernels_doc.Set(kernel.name, std::move(entry));
  }

  ldv::Json doc = ldv::Json::MakeObject();
  doc.Set("hardware_threads",
          ldv::Json::MakeInt(std::thread::hardware_concurrency()));
  doc.Set("rows", ldv::Json::MakeInt(kRows));
  doc.Set("duration_ms", ldv::Json::MakeInt(kRunNanos / 1'000'000));
  doc.Set("kernels", std::move(kernels_doc));
  ldv::Status written = ldv::WriteStringToFile(out, doc.Dump(true) + "\n");
  if (!written.ok()) {
    std::fprintf(stderr, "bench_vector: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("bench_vector: wrote %s\n", out.c_str());
  return 0;
}
