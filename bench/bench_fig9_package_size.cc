// Figure 9: package size (MB) of the PTU, server-included, and
// server-excluded packages for each of the 18 Table II queries.
//
// Also prints the component breakdown that explains the shape: PTU carries
// the full data files; server-included carries the relevant tuple subset
// (at most ~25% of tuples for these queries); server-excluded carries the
// recorded query answers (x10 executions).

#include <cstdio>
#include <cstdlib>

#include "harness.h"

using ldv::PackageMode;
using ldv::bench::BenchConfig;
using ldv::bench::RunExperiment;
using ldv::bench::RunResult;

int main() {
  BenchConfig config = BenchConfig::FromEnv();
  if (std::getenv("LDV_BENCH_INSERTS") == nullptr) config.num_inserts = 100;
  if (std::getenv("LDV_BENCH_UPDATES") == nullptr) config.num_updates = 20;
  std::string workdir = ldv::bench::BenchWorkdir("fig9");

  std::printf(
      "Figure 9 — package sizes (MB), TPC-H sf=%.3f (10 executions per "
      "query)\n\n", config.scale_factor);
  std::printf("%-6s | %10s %10s %10s | %12s %12s %12s\n", "query", "PTU",
              "included", "excluded", "full-data", "tuple-subset",
              "replay-log");

  for (const ldv::tpch::QuerySpec& query : ldv::tpch::ExperimentQueries()) {
    const PackageMode modes[] = {PackageMode::kPtu,
                                 PackageMode::kServerIncluded,
                                 PackageMode::kServerExcluded};
    double total_mb[3];
    double component_mb[3];
    int64_t packaged_tuples = 0;
    for (int m = 0; m < 3; ++m) {
      RunResult r = RunExperiment(modes[m], query, config, workdir);
      total_mb[m] = static_cast<double>(r.package.total_bytes) / 1e6;
      component_mb[0] = m == 0 ? static_cast<double>(
                                     r.package.full_data_bytes) /
                                     1e6
                               : component_mb[0];
      if (m == 1) {
        component_mb[1] =
            static_cast<double>(r.package.tuple_data_bytes) / 1e6;
        packaged_tuples = r.package.packaged_tuples;
      }
      if (m == 2) {
        component_mb[2] =
            static_cast<double>(r.package.replay_log_bytes) / 1e6;
      }
    }
    std::printf(
        "%-6s | %10.3f %10.3f %10.3f | %12.3f %12.3f %12.3f   (%lld tuples)\n",
        query.id.c_str(), total_mb[0], total_mb[1], total_mb[2],
        component_mb[0], component_mb[1], component_mb[2],
        static_cast<long long>(packaged_tuples));
  }
  std::printf(
      "\nexpected shape (paper Fig. 9): PTU packages are largest (full data "
      "files);\nserver-included packages shrink with selectivity (only the "
      "relevant tuples);\nserver-excluded is smallest for low-selectivity / "
      "small-result queries and\novertakes server-included when 10x the "
      "result outweighs the input subset.\n");
  std::printf("workdir: %s\n", workdir.c_str());
  return 0;
}
