// Table III: package contents per packaging approach. Builds one package of
// each type for query Q1-1 and prints the presence matrix the paper reports:
//
//   Package type    | Software binaries | DB server | Data files | DB provenance
//   PTU             |        yes        |    yes    |   full     |     no
//   LDV srv-included|        yes        |    yes    |   empty(*) |     yes
//   LDV srv-excluded|        yes        |    no     |   none     |     yes
//
// (*) empty data directory + the relevant-tuple CSVs restored at replay.

#include <cstdio>

#include "harness.h"

using ldv::PackageMode;
using ldv::bench::BenchConfig;
using ldv::bench::RunExperiment;
using ldv::bench::RunResult;

int main() {
  BenchConfig config = BenchConfig::FromEnv();
  config.num_inserts = 100;
  config.num_updates = 20;
  std::string workdir = ldv::bench::BenchWorkdir("table3");
  auto query = ldv::tpch::FindQuery("Q1-1");
  LDV_CHECK(query.ok());

  std::printf("Table III — package contents (query Q1-1, sf=%.3f)\n\n",
              config.scale_factor);
  std::printf("%-17s | %-10s | %-9s | %-12s | %-13s | %-9s\n", "package type",
              "sw binaries", "DB server", "data files", "DB provenance",
              "size (MB)");

  const struct {
    const char* label;
    PackageMode mode;
  } rows[] = {
      {"PTU", PackageMode::kPtu},
      {"LDV srv-included", PackageMode::kServerIncluded},
      {"LDV srv-excluded", PackageMode::kServerExcluded},
      {"VM image", PackageMode::kVmImage},
  };

  for (const auto& row : rows) {
    RunResult r = RunExperiment(row.mode, *query, config, workdir);
    auto manifest = ldv::PackageManifest::Load(
        workdir + "/pkg_" + query->id + "_" +
        std::string(ldv::PackageModeName(row.mode)));
    LDV_CHECK(manifest.ok());
    const char* data_files =
        r.package.full_data_bytes > 0
            ? "full"
            : (r.package.tuple_data_bytes > 0 ? "empty+subset" : "none");
    const char* provenance =
        row.mode == PackageMode::kServerIncluded
            ? "yes (tuples)"
            : (row.mode == PackageMode::kServerExcluded ? "yes (answers)"
                                                        : "no");
    std::printf("%-17s | %-10s | %-9s | %-12s | %-13s | %9.3f\n", row.label,
                "yes", manifest->has_server_binary ? "yes" : "no", data_files,
                provenance,
                static_cast<double>(r.package.total_bytes) / 1e6);
  }
  std::printf(
      "\npaper Table III: PTU ships the full data files; the server-included "
      "LDV package\nships the server with an empty data directory plus the "
      "relevant tuples (its DB\nprovenance); the server-excluded package "
      "ships neither server nor data files.\n");
  std::printf("workdir: %s\n", workdir.c_str());
  return 0;
}
