// Figure 7 (a+b): execution time of each application step (Insert 1000 /
// First Select / Other Selects / Update 100) for query Q1-1 under
//   - the PostgreSQL+PTU baseline (PTU mode: OS-level capture only),
//   - the LDV server-included package,
//   - the LDV server-excluded package,
// during audit (7a) and during replay (7b, plus the replay Initialization
// step that only server-included pays meaningfully).
//
// Env: LDV_BENCH_SF (default 0.01), LDV_BENCH_INSERTS, LDV_BENCH_UPDATES.

#include <cstdio>

#include "harness.h"

using ldv::PackageMode;
using ldv::bench::BenchConfig;
using ldv::bench::RunExperiment;
using ldv::bench::RunResult;

int main() {
  BenchConfig config = BenchConfig::FromEnv();
  std::string workdir = ldv::bench::BenchWorkdir("fig7");
  auto query = ldv::tpch::FindQuery("Q1-1");
  LDV_CHECK(query.ok());

  std::printf(
      "Figure 7 — per-step execution time, query Q1-1, TPC-H sf=%.3f "
      "(%d inserts / %d selects / %d updates)\n\n",
      config.scale_factor, config.num_inserts, config.num_selects,
      config.num_updates);

  struct Row {
    const char* label;
    PackageMode mode;
  };
  const Row rows[] = {
      {"PostgreSQL+PTU", PackageMode::kPtu},
      {"Server-included", PackageMode::kServerIncluded},
      {"Server-excluded", PackageMode::kServerExcluded},
  };

  ldv::tpch::StepTimings plain =
      ldv::bench::RunUnaudited(*query, config, workdir);
  std::printf("(a) Audit — seconds per step\n");
  std::printf("%-18s %12s %12s %14s %12s\n", "configuration", "Inserts",
              "FirstSelect", "OtherSelects", "Updates");
  std::printf("%-18s %12.4f %12.4f %14.4f %12.4f\n", "no audit (ref)",
              plain.inserts_seconds, plain.first_select_seconds,
              plain.other_selects_seconds, plain.updates_seconds);

  RunResult results[3];
  for (int i = 0; i < 3; ++i) {
    results[i] = RunExperiment(rows[i].mode, *query, config, workdir);
    const ldv::tpch::StepTimings& t = results[i].audit_times;
    std::printf("%-18s %12.4f %12.4f %14.4f %12.4f\n", rows[i].label,
                t.inserts_seconds, t.first_select_seconds,
                t.other_selects_seconds, t.updates_seconds);
  }

  std::printf("\n(b) Replay — seconds per step\n");
  std::printf("%-18s %14s %12s %12s %14s %12s\n", "configuration",
              "Initialization", "Inserts", "FirstSelect", "OtherSelects",
              "Updates");
  for (int i = 0; i < 3; ++i) {
    const ldv::tpch::StepTimings& t = results[i].replay_times;
    std::printf("%-18s %14.4f %12.4f %12.4f %14.4f %12.4f\n", rows[i].label,
                results[i].replay_report.init_seconds, t.inserts_seconds,
                t.first_select_seconds, t.other_selects_seconds,
                t.updates_seconds);
  }

  std::printf(
      "\nexpected shape (paper Fig. 7): audit overhead server-included > "
      "server-excluded > PTU,\nlargest on First Select (cold provenance "
      "cache) and Updates (reenactment queries);\nreplay Initialization "
      "dominated by server-included tuple restore; server-excluded\nselects "
      "replay fastest (recorded answers read from disk).\n");
  std::printf("workdir: %s\n", workdir.c_str());
  return 0;
}
