// Multi-client throughput benchmark for the MVCC concurrency subsystem
// (DESIGN.md §12): N socket clients hammer one DbServer and the clients-vs-
// QPS curve shows whether independent SELECTs actually execute concurrently.
//
// Morsel parallelism is pinned to dop 1 so every statement is serial and
// any scaling comes purely from inter-query parallelism — the quantity this
// benchmark isolates. Two workloads:
//   - read_only: all clients run the same aggregation query,
//   - mixed: one writer streams autocommit UPDATEs while the remaining
//     clients read (snapshot reads must keep flowing around the writer).
//
// Writes BENCH_CONCURRENT.json (path = argv[1], default
// LDV_BENCH_CONCURRENT_OUT, default "BENCH_CONCURRENT.json");
// tools/bench_smoke_check.py enforces the scaling gate: >= 3x read-only QPS
// at 8 clients vs 1 on boxes with >= 4 hardware threads, a loud SKIP plus a
// no-regression floor otherwise.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "net/db_client.h"
#include "net/db_server.h"
#include "storage/database.h"
#include "util/fsutil.h"
#include "util/thread_pool.h"

namespace {

using ldv::net::DbServer;
using ldv::net::DbServerOptions;
using ldv::net::EngineHandle;
using ldv::net::LocalDbClient;
using ldv::net::SocketDbClient;

constexpr int kRows = 20'000;
constexpr int64_t kRunNanos = 400'000'000;  // 400 ms per curve point

constexpr char kReadSql[] =
    "SELECT grp, count(*), sum(val) FROM wide WHERE val < 750 GROUP BY grp";

bool FillDatabase(LocalDbClient* client) {
  if (!client->Query("CREATE TABLE wide (id INT, grp INT, val INT)").ok()) {
    return false;
  }
  for (int base = 0; base < kRows; base += 500) {
    std::string sql = "INSERT INTO wide VALUES ";
    for (int i = base; i < base + 500; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 97) + "," +
             std::to_string(i % 1000) + ")";
    }
    if (!client->Query(sql).ok()) return false;
  }
  return true;
}

/// Runs `clients` reader threads for kRunNanos; returns aggregate QPS.
double ReadOnlyQps(const std::string& socket_path, int clients) {
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<int64_t> completed{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      auto client = SocketDbClient::Connect(socket_path);
      if (!client.ok()) {
        ++errors;
        return;
      }
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_acquire)) {
        if (!(*client)->Query(kReadSql).ok()) {
          ++errors;
          return;
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const int64_t start = ldv::NowNanos();
  go.store(true, std::memory_order_release);
  while (ldv::NowNanos() - start < kRunNanos) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  if (errors.load() != 0) {
    std::fprintf(stderr, "bench_concurrent: %d client error(s) at %d clients\n",
                 errors.load(), clients);
    std::exit(1);
  }
  const double seconds =
      static_cast<double>(ldv::NowNanos() - start) / 1e9;
  return static_cast<double>(completed.load()) / seconds;
}

struct MixedResult {
  double reads_per_sec = 0;
  double writes_per_sec = 0;
};

/// One autocommit writer + (clients - 1) readers for kRunNanos.
MixedResult MixedQps(const std::string& socket_path, int clients) {
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads{0};
  std::atomic<int64_t> writes{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  threads.emplace_back([&] {
    auto client = SocketDbClient::Connect(socket_path);
    if (!client.ok()) {
      ++errors;
      return;
    }
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    int i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::string sql = "UPDATE wide SET val = val + 1 WHERE id = " +
                              std::to_string(i++ % kRows);
      if (!(*client)->Query(sql).ok()) {
        ++errors;
        return;
      }
      writes.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int c = 1; c < clients; ++c) {
    threads.emplace_back([&] {
      auto client = SocketDbClient::Connect(socket_path);
      if (!client.ok()) {
        ++errors;
        return;
      }
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_acquire)) {
        if (!(*client)->Query(kReadSql).ok()) {
          ++errors;
          return;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const int64_t start = ldv::NowNanos();
  go.store(true, std::memory_order_release);
  while (ldv::NowNanos() - start < kRunNanos) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  if (errors.load() != 0) {
    std::fprintf(stderr, "bench_concurrent: %d client error(s) in mixed run\n",
                 errors.load());
    std::exit(1);
  }
  const double seconds =
      static_cast<double>(ldv::NowNanos() - start) / 1e9;
  MixedResult result;
  result.reads_per_sec = static_cast<double>(reads.load()) / seconds;
  result.writes_per_sec = static_cast<double>(writes.load()) / seconds;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_CONCURRENT.json";
  if (const char* env = std::getenv("LDV_BENCH_CONCURRENT_OUT")) out = env;
  if (argc > 1) out = argv[1];

  // Serial statements: the curve must measure inter-query parallelism, not
  // morsel fan-out.
  ldv::ThreadPool::SetDefaultDop(1);

  auto dir = ldv::MakeTempDir("bench_concurrent");
  if (!dir.ok()) {
    std::fprintf(stderr, "bench_concurrent: %s\n",
                 dir.status().ToString().c_str());
    return 1;
  }
  ldv::storage::Database db;
  EngineHandle engine(&db);
  LocalDbClient local(&engine);
  if (!FillDatabase(&local)) {
    std::fprintf(stderr, "bench_concurrent: database fill failed\n");
    return 1;
  }
  const std::string socket_path = *dir + "/bench.sock";
  DbServer server(&engine, socket_path, DbServerOptions{});
  ldv::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "bench_concurrent: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  ldv::Json read_only = ldv::Json::MakeObject();
  for (int clients : {1, 2, 4, 8}) {
    const double qps = ReadOnlyQps(socket_path, clients);
    std::printf("bench_concurrent: read_only clients=%d %.0f qps\n", clients,
                qps);
    read_only.Set("clients_" + std::to_string(clients),
                  ldv::Json::MakeDouble(qps));
  }
  const MixedResult mixed = MixedQps(socket_path, 8);
  std::printf("bench_concurrent: mixed clients=8 %.0f reads/s %.0f writes/s\n",
              mixed.reads_per_sec, mixed.writes_per_sec);

  server.Stop();
  (void)ldv::RemoveAll(*dir);

  ldv::Json mixed_doc = ldv::Json::MakeObject();
  mixed_doc.Set("clients", ldv::Json::MakeInt(8));
  mixed_doc.Set("reads_per_sec", ldv::Json::MakeDouble(mixed.reads_per_sec));
  mixed_doc.Set("writes_per_sec",
                ldv::Json::MakeDouble(mixed.writes_per_sec));
  ldv::Json doc = ldv::Json::MakeObject();
  doc.Set("hardware_threads",
          ldv::Json::MakeInt(std::thread::hardware_concurrency()));
  doc.Set("rows", ldv::Json::MakeInt(kRows));
  doc.Set("duration_ms", ldv::Json::MakeInt(kRunNanos / 1'000'000));
  doc.Set("read_only", std::move(read_only));
  doc.Set("mixed", std::move(mixed_doc));
  ldv::Status written = ldv::WriteStringToFile(out, doc.Dump(true) + "\n");
  if (!written.ok()) {
    std::fprintf(stderr, "bench_concurrent: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  std::printf("bench_concurrent: wrote %s\n", out.c_str());
  return 0;
}
