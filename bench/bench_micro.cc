// Micro-benchmarks (google-benchmark) of the components the paper's numbers
// rest on: SQL parsing, LIKE matching, scan+filter execution, hash joins,
// the Lineage overhead of provenance mode, the network protocol round trip,
// trace serialization, and dependency inference.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/json.h"
#include "common/logging.h"
#include "exec/governor.h"
#include "harness.h"
#include "exec/executor.h"
#include "net/db_client.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sql/parser.h"
#include "storage/database.h"
#include "storage/wal.h"
#include "tpch/generator.h"
#include "tpch/queries.h"
#include "trace/inference.h"
#include "trace/serialize.h"
#include "util/fsutil.h"
#include "util/rng.h"
#include "util/strings.h"

namespace {

void BM_ParseSelect(benchmark::State& state) {
  const std::string sql = ldv::tpch::ExperimentQueries()[7].sql;  // Q2-3 join
  for (auto _ : state) {
    auto stmt = ldv::sql::Parse(sql);
    benchmark::DoNotOptimize(stmt);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseSelect);

void BM_SqlLikeMatch(benchmark::State& state) {
  std::string text = "Customer#000074321";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ldv::SqlLikeMatch(text, "%0000%"));
    benchmark::DoNotOptimize(ldv::SqlLikeMatch(text, "%9999%"));
  }
  state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_SqlLikeMatch);

/// Shared tiny TPC-H instance for the execution benchmarks.
ldv::storage::Database* BenchDb() {
  static ldv::storage::Database* db = [] {
    auto* instance = new ldv::storage::Database();
    ldv::tpch::GenOptions options;
    options.scale_factor = 0.002;
    LDV_CHECK_OK(ldv::tpch::Generate(instance, options));
    return instance;
  }();
  return db;
}

void BM_ScanFilter(benchmark::State& state) {
  ldv::exec::Executor executor(BenchDb());
  const std::string sql =
      "SELECT l_quantity FROM lineitem WHERE l_suppkey BETWEEN 1 AND " +
      std::to_string(state.range(0));
  int64_t rows = 0;
  for (auto _ : state) {
    auto result = executor.Execute(sql, {});
    LDV_CHECK(result.ok());
    rows += static_cast<int64_t>(result->rows.size());
  }
  state.SetItemsProcessed(
      state.iterations() *
      BenchDb()->FindTable("lineitem")->live_row_count());
  benchmark::DoNotOptimize(rows);
}
BENCHMARK(BM_ScanFilter)->Arg(10)->Arg(250);

void BM_HashJoin3Way(benchmark::State& state) {
  ldv::exec::Executor executor(BenchDb());
  const std::string sql = ldv::tpch::ExperimentQueries()[6].sql;  // Q2-2
  for (auto _ : state) {
    auto result = executor.Execute(sql, {});
    LDV_CHECK(result.ok());
    benchmark::DoNotOptimize(result->rows.size());
  }
}
BENCHMARK(BM_HashJoin3Way);

void BM_QueryLineageOverhead(benchmark::State& state) {
  ldv::exec::Executor executor(BenchDb());
  const bool provenance = state.range(0) != 0;
  std::string sql =
      "SELECT l_quantity FROM lineitem WHERE l_suppkey BETWEEN 1 AND 100";
  if (provenance) sql = "PROVENANCE " + sql;
  for (auto _ : state) {
    auto result = executor.Execute(sql, {});
    LDV_CHECK(result.ok());
    benchmark::DoNotOptimize(result->prov_tuples.size());
  }
}
BENCHMARK(BM_QueryLineageOverhead)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"provenance"});

void BM_ReenactmentUpdate(benchmark::State& state) {
  ldv::storage::Database db;
  ldv::tpch::GenOptions options;
  options.scale_factor = 0.002;
  LDV_CHECK_OK(ldv::tpch::Generate(&db, options));
  db.FindTable("orders")->set_provenance_tracking(true);
  ldv::exec::Executor executor(&db);
  const bool provenance = state.range(0) != 0;
  int64_t key = 1;
  for (auto _ : state) {
    std::string sql = ldv::StrFormat(
        "UPDATE orders SET o_comment = 'x' WHERE o_orderkey = %lld",
        static_cast<long long>(key % 3000 + 1));
    if (provenance) sql = "PROVENANCE " + sql;
    auto result = executor.Execute(sql, {});
    LDV_CHECK(result.ok());
    ++key;
  }
}
BENCHMARK(BM_ReenactmentUpdate)->Arg(0)->Arg(1)->ArgNames({"provenance"});

void BM_ProtocolRoundTrip(benchmark::State& state) {
  ldv::exec::Executor executor(BenchDb());
  auto result = executor.Execute(
      "SELECT l_orderkey, l_quantity, l_comment FROM lineitem "
      "WHERE l_suppkey BETWEEN 1 AND 100",
      {});
  LDV_CHECK(result.ok());
  for (auto _ : state) {
    std::string bytes = ldv::net::EncodeResponse(ldv::Status::Ok(), *result);
    auto decoded = ldv::net::DecodeResponse(bytes);
    LDV_CHECK(decoded.ok());
    benchmark::DoNotOptimize(decoded->rows.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(result->rows.size()));
}
BENCHMARK(BM_ProtocolRoundTrip);

ldv::trace::TraceGraph* BenchTrace(int files) {
  auto* g = new ldv::trace::TraceGraph();
  ldv::Rng rng(99);
  std::vector<ldv::trace::NodeId> file_nodes;
  std::vector<ldv::trace::NodeId> procs;
  for (int i = 0; i < files; ++i) {
    file_nodes.push_back(g->GetOrAddNode(ldv::trace::NodeType::kFile,
                                         "f" + std::to_string(i)));
  }
  for (int i = 0; i < files / 2; ++i) {
    procs.push_back(g->GetOrAddNode(ldv::trace::NodeType::kProcess,
                                    "p" + std::to_string(i)));
  }
  for (int i = 0; i < files * 4; ++i) {
    auto f = file_nodes[static_cast<size_t>(rng.Uniform(0, files - 1))];
    auto p = procs[static_cast<size_t>(rng.Uniform(0, files / 2 - 1))];
    int64_t begin = rng.Uniform(1, 500);
    if (rng.Bernoulli(0.5)) {
      (void)g->MergeEdge(f, p, ldv::trace::EdgeType::kReadFrom,
                         {begin, begin + 3});
    } else {
      (void)g->MergeEdge(p, f, ldv::trace::EdgeType::kHasWritten,
                         {begin, begin + 3});
    }
  }
  return g;
}

void BM_DependencyInference(benchmark::State& state) {
  static ldv::trace::TraceGraph* graph = BenchTrace(200);
  ldv::trace::DependencyAnalyzer analyzer(graph);
  int64_t node = 0;
  for (auto _ : state) {
    auto deps = analyzer.DependenciesOf(
        static_cast<ldv::trace::NodeId>(node % 200));
    benchmark::DoNotOptimize(deps.size());
    ++node;
  }
}
BENCHMARK(BM_DependencyInference);

void BM_TraceSerialize(benchmark::State& state) {
  static ldv::trace::TraceGraph* graph = BenchTrace(500);
  for (auto _ : state) {
    std::string bytes = ldv::trace::SerializeTrace(*graph);
    auto restored = ldv::trace::DeserializeTrace(bytes);
    LDV_CHECK(restored.ok());
    benchmark::DoNotOptimize(restored->num_edges());
  }
}
BENCHMARK(BM_TraceSerialize);

// --- Observability primitives: the costs the <2% overhead bound rests on
// (ISSUE: instrumentation compiled in but with no sink configured). ---

void BM_ObsCounterAdd(benchmark::State& state) {
  static ldv::obs::Counter* counter =
      ldv::obs::MetricsRegistry::Global().counter("bench.counter");
  for (auto _ : state) counter->Add(1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramObserve(benchmark::State& state) {
  static ldv::obs::Histogram* histogram =
      ldv::obs::MetricsRegistry::Global().latency_histogram("bench.latency");
  int64_t value = 1;
  for (auto _ : state) {
    histogram->Observe(value);
    value = (value * 7 + 1) % 1'000'000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramObserve);

/// The disabled-tracing fast path: constructing and destroying a Span while
/// no recorder is enabled must compile down to a branch on an atomic flag.
void BM_ObsSpanDisabled(benchmark::State& state) {
  LDV_CHECK(!ldv::obs::TraceRecorder::enabled());
  for (auto _ : state) {
    ldv::obs::Span span("bench.span", "bench");
    benchmark::DoNotOptimize(span.recording());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpanDisabled);

/// Query execution with per-operator profiling on (the EXPLAIN ANALYZE
/// path) — the compare-against number for the profiling overhead.
void BM_ScanFilterProfiled(benchmark::State& state) {
  ldv::exec::Executor executor(BenchDb());
  ldv::exec::ExecOptions options;
  options.profile = true;
  const std::string sql =
      "SELECT l_quantity FROM lineitem WHERE l_suppkey BETWEEN 1 AND 250";
  for (auto _ : state) {
    auto result = executor.Execute(sql, options);
    LDV_CHECK(result.ok());
    benchmark::DoNotOptimize(result->profile);
  }
  state.SetItemsProcessed(
      state.iterations() *
      BenchDb()->FindTable("lineitem")->live_row_count());
}
BENCHMARK(BM_ScanFilterProfiled);

// --- Durability: the price of fsync-on-commit and what group commit buys
// back. BM_WalCommit runs autocommitted single-row INSERTs through the
// engine with a WAL attached; sync=0 appends without syncing (the no-fsync
// baseline), sync=1 uses fdatasync, sync=2 full fsync. At threads:8 the
// concurrent writers piggyback on each other's fsync (group commit), so the
// aggregate items/s at sync:2/threads:8 should recover >= 3x the
// single-writer fsync throughput — the bound tools/check.sh spot-checks. ---

struct WalBenchEnv {
  std::string root;
  std::unique_ptr<ldv::storage::Database> db;
  std::unique_ptr<ldv::net::EngineHandle> engine;
  std::atomic<int64_t> next_key{0};
};
WalBenchEnv* g_wal_bench = nullptr;

void WalBenchSetup(const benchmark::State& state) {
  auto* env = new WalBenchEnv();
  auto dir = ldv::MakeTempDir("bench_wal");
  LDV_CHECK(dir.ok());
  env->root = *dir;
  env->db = std::make_unique<ldv::storage::Database>();
  env->engine = std::make_unique<ldv::net::EngineHandle>(env->db.get());
  ldv::storage::WalOptions options;
  switch (state.range(0)) {
    case 0: options.sync_mode = ldv::storage::WalSyncMode::kNone; break;
    case 1: options.sync_mode = ldv::storage::WalSyncMode::kFdatasync; break;
    default: options.sync_mode = ldv::storage::WalSyncMode::kFsync; break;
  }
  auto wal = ldv::storage::Wal::Open(env->root + "/wal", options, 1);
  LDV_CHECK(wal.ok());
  ldv::net::EngineDurabilityOptions durability;
  durability.data_dir = env->root + "/data";
  env->engine->AttachWal(std::move(*wal), durability);
  ldv::net::DbRequest ddl;
  ddl.sql = "CREATE TABLE wal_bench (id INT, v INT)";
  LDV_CHECK(env->engine->Execute(ddl).ok());
  g_wal_bench = env;
}

void WalBenchTeardown(const benchmark::State&) {
  std::string root = g_wal_bench->root;
  delete g_wal_bench;
  g_wal_bench = nullptr;
  (void)ldv::RemoveAll(root);
}

void BM_WalCommit(benchmark::State& state) {
  ldv::net::EngineHandle* engine = g_wal_bench->engine.get();
  // Session ids only matter for explicit transactions, but keep them
  // distinct anyway so the run mirrors one-connection-per-writer.
  const int64_t session = state.thread_index() + 1;
  for (auto _ : state) {
    const int64_t key = g_wal_bench->next_key.fetch_add(1);
    ldv::net::DbRequest request;
    request.sql = ldv::StrFormat("INSERT INTO wal_bench VALUES (%lld, 1)",
                                 static_cast<long long>(key));
    auto result = engine->ExecuteSession(request, session);
    LDV_CHECK(result.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalCommit)
    ->ArgNames({"sync"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Threads(1)
    ->Threads(8)
    ->Setup(WalBenchSetup)
    ->Teardown(WalBenchTeardown)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// --- Morsel-driven parallel execution: serial-vs-parallel throughput of
// the hot operators over a table big enough (~150k rows, ~75 morsels) that
// fan-out dominates coordination. Each run records its point on the
// threads-vs-throughput curve; main() writes BENCH_PARALLEL.json when
// LDV_BENCH_PARALLEL_OUT is set and tools/bench_smoke_check.py enforces the
// scaling bound (hardware-aware: on single-core boxes only no-regression
// is checked). ---

constexpr int64_t kParallelBenchRows = 150'000;

ldv::storage::Database* ParallelBenchDb() {
  static ldv::storage::Database* db = [] {
    auto* instance = new ldv::storage::Database();
    using ldv::storage::Column;
    using ldv::storage::Value;
    using ldv::storage::ValueType;
    auto wide = instance->CreateTable(
        "wide", ldv::storage::Schema({{"id", ValueType::kInt64},
                                      {"grp", ValueType::kInt64},
                                      {"val", ValueType::kDouble},
                                      {"pad", ValueType::kString}}));
    LDV_CHECK(wide.ok());
    ldv::Rng rng(51);
    for (int64_t i = 0; i < kParallelBenchRows; ++i) {
      LDV_CHECK((*wide)
                    ->Insert({Value::Int(i), Value::Int(rng.Uniform(0, 99)),
                              Value::Real(rng.NextDouble() * 1000.0),
                              Value::Str("pad" + std::to_string(i % 1000))},
                             0)
                    .ok());
    }
    auto dims = instance->CreateTable(
        "dims", ldv::storage::Schema(
                    {{"g", ValueType::kInt64}, {"w", ValueType::kDouble}}));
    LDV_CHECK(dims.ok());
    for (int64_t g = 0; g < 100; ++g) {
      LDV_CHECK((*dims)
                    ->Insert({Value::Int(g), Value::Real(0.5 * g)}, 0)
                    .ok());
    }
    return instance;
  }();
  return db;
}

/// Runs `sql` at the benchmark's threads arg, reporting rows scanned per
/// second and recording the (threads, throughput) point on `curve`.
void RunParallelQueryBench(benchmark::State& state, const char* curve,
                           const std::string& sql) {
  ldv::exec::Executor executor(ParallelBenchDb());
  ldv::exec::ExecOptions options;
  options.threads = static_cast<int>(state.range(0));
  const int64_t start = ldv::NowNanos();
  for (auto _ : state) {
    auto result = executor.Execute(sql, options);
    LDV_CHECK(result.ok());
    benchmark::DoNotOptimize(result->rows.size());
  }
  const double seconds =
      static_cast<double>(ldv::NowNanos() - start) / 1e9;
  const int64_t items =
      static_cast<int64_t>(state.iterations()) * kParallelBenchRows;
  state.SetItemsProcessed(items);
  if (seconds > 0) {
    ldv::bench::ParallelCurve::Global().Record(
        curve, static_cast<int>(state.range(0)),
        static_cast<double>(items) / seconds);
  }
}

void BM_ParallelScan(benchmark::State& state) {
  RunParallelQueryBench(state, "scan",
                        "SELECT id, val * 2 FROM wide WHERE grp < 50");
}
BENCHMARK(BM_ParallelScan)
    ->ArgNames({"threads"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

void BM_ParallelHashJoin(benchmark::State& state) {
  RunParallelQueryBench(
      state, "hash_join",
      "SELECT w.id, d.w FROM wide w, dims d WHERE w.grp = d.g AND d.w > 10");
}
BENCHMARK(BM_ParallelHashJoin)
    ->ArgNames({"threads"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

void BM_ParallelAgg(benchmark::State& state) {
  RunParallelQueryBench(
      state, "agg",
      "SELECT grp, count(*), sum(val), min(val) FROM wide GROUP BY grp");
}
BENCHMARK(BM_ParallelAgg)
    ->ArgNames({"threads"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

// --- Resource-governance latency probe (DESIGN.md §11): how fast a
// mid-scan statement unwinds after a cancel lands, and how far past its
// deadline a statement overshoots, at threads 1 and 8 over the 150k-row
// table. Not a google-benchmark (the interesting number is one latency, not
// a throughput): main() runs it when LDV_BENCH_GOVERNANCE_OUT is set and
// tools/bench_smoke_check.py enforces the <=100 ms acceptance bound. ---

/// Cross join whose predicate never matches (val and w are non-negative):
/// 15M predicate evaluations with governor checks at every morsel boundary.
constexpr char kGovernanceProbeSql[] =
    "SELECT count(*) FROM wide, dims WHERE val + w < -1";

/// Runs the probe query with a cancel fired ~30 ms in; returns the
/// cancel-to-return latency in milliseconds.
double GovernanceCancelLatencyMs(int threads) {
  ldv::exec::Executor executor(ParallelBenchDb());
  ldv::exec::QueryGovernor governor;
  ldv::exec::ExecOptions options;
  options.threads = threads;
  options.governor = &governor;
  std::atomic<int64_t> finished{0};
  ldv::Status verdict = ldv::Status::Ok();
  std::thread worker([&] {
    auto result = executor.Execute(kGovernanceProbeSql, options);
    verdict = result.status();
    finished.store(ldv::NowNanos(), std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const int64_t cancelled_at = ldv::NowNanos();
  governor.Cancel(ldv::StatusCode::kCancelled, "bench probe");
  worker.join();
  if (verdict.ok()) {
    // The scan finished before the cancel landed — unwinding cost nothing.
    return 0.0;
  }
  LDV_CHECK(verdict.code() == ldv::StatusCode::kCancelled);
  return static_cast<double>(finished.load(std::memory_order_acquire) -
                             cancelled_at) /
         1e6;
}

/// Runs the probe query under a 25 ms deadline; returns how many
/// milliseconds past the deadline the statement actually returned.
double GovernanceDeadlineOvershootMs(int threads) {
  constexpr int64_t kDeadlineMs = 25;
  ldv::exec::Executor executor(ParallelBenchDb());
  ldv::exec::QueryGovernor governor;
  ldv::exec::ExecOptions options;
  options.threads = threads;
  options.governor = &governor;
  const int64_t start = ldv::NowNanos();
  governor.set_deadline_nanos(start + kDeadlineMs * 1'000'000);
  auto result = executor.Execute(kGovernanceProbeSql, options);
  const double elapsed_ms =
      static_cast<double>(ldv::NowNanos() - start) / 1e6;
  if (result.ok()) return 0.0;  // finished inside the deadline
  LDV_CHECK(result.status().code() == ldv::StatusCode::kDeadlineExceeded);
  const double overshoot = elapsed_ms - static_cast<double>(kDeadlineMs);
  return overshoot > 0 ? overshoot : 0.0;
}

int RunGovernanceProbe(const char* path) {
  ldv::Json cancel = ldv::Json::MakeObject();
  ldv::Json overshoot = ldv::Json::MakeObject();
  for (int threads : {1, 8}) {
    const std::string key = "threads_" + std::to_string(threads);
    cancel.Set(key, ldv::Json::MakeDouble(GovernanceCancelLatencyMs(threads)));
    overshoot.Set(
        key, ldv::Json::MakeDouble(GovernanceDeadlineOvershootMs(threads)));
  }
  ldv::Json doc = ldv::Json::MakeObject();
  doc.Set("rows", ldv::Json::MakeInt(kParallelBenchRows));
  doc.Set("cancel_latency_ms", std::move(cancel));
  doc.Set("deadline_overshoot_ms", std::move(overshoot));
  ldv::Status written = ldv::WriteStringToFile(path, doc.Dump(true) + "\n");
  if (!written.ok()) {
    std::fprintf(stderr, "bench_micro: %s\n", written.ToString().c_str());
    return 1;
  }
  return 0;
}

void BM_TpchGenerate(benchmark::State& state) {
  for (auto _ : state) {
    ldv::storage::Database db;
    ldv::tpch::GenOptions options;
    options.scale_factor = 0.001;
    LDV_CHECK_OK(ldv::tpch::Generate(&db, options));
    benchmark::DoNotOptimize(db.TotalLiveRows());
  }
}
BENCHMARK(BM_TpchGenerate);

}  // namespace

// Hand-rolled main (instead of BENCHMARK_MAIN) so a run can double as a
// metrics source: LDV_METRICS_OUT=<path> dumps the global registry snapshot
// after the benchmarks finish (used by `tools/check.sh --bench-smoke`).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (const char* path = std::getenv("LDV_METRICS_OUT")) {
    ldv::Status written = ldv::obs::WriteGlobalMetrics(path);
    if (!written.ok()) {
      std::fprintf(stderr, "bench_micro: %s\n", written.ToString().c_str());
      return 1;
    }
  }
  if (const char* path = std::getenv("LDV_BENCH_GOVERNANCE_OUT")) {
    int failed = RunGovernanceProbe(path);
    if (failed != 0) return failed;
  }
  if (const char* path = std::getenv("LDV_BENCH_PARALLEL_OUT")) {
    if (!ldv::bench::ParallelCurve::Global().empty()) {
      ldv::Status written = ldv::bench::ParallelCurve::Global().WriteTo(path);
      if (!written.ok()) {
        std::fprintf(stderr, "bench_micro: %s\n", written.ToString().c_str());
        return 1;
      }
    }
  }
  return 0;
}
