// §IX-F: comparison with the virtual-machine-image approach. The paper's
// headline numbers: an 8.2 GB VMI vs ~100 MB average LDV package — 80x —
// and VM replay slightly slower than a non-audited native execution.
//
// The VMI is modeled (DESIGN.md substitution #5): size = scaled base OS
// image + full data files + app; replay = boot + slowdown x native.

#include <cstdio>

#include "harness.h"

using ldv::PackageMode;
using ldv::bench::BenchConfig;
using ldv::bench::RunExperiment;
using ldv::bench::RunResult;

int main() {
  BenchConfig config = BenchConfig::FromEnv();
  std::string workdir = ldv::bench::BenchWorkdir("vmi");

  std::printf("§IX-F — VM image vs LDV packages (sf=%.3f)\n\n",
              config.scale_factor);

  // Average LDV package size over a spread of queries (the paper reports a
  // ~100 MB average across its experiments).
  const char* sample_queries[] = {"Q1-1", "Q1-5", "Q2-2", "Q3-2", "Q4-3"};
  double sum_included = 0;
  double sum_excluded = 0;
  RunResult last_included;
  for (const char* id : sample_queries) {
    auto query = ldv::tpch::FindQuery(id);
    LDV_CHECK(query.ok());
    RunResult inc =
        RunExperiment(PackageMode::kServerIncluded, *query, config, workdir);
    RunResult exc =
        RunExperiment(PackageMode::kServerExcluded, *query, config, workdir);
    sum_included += static_cast<double>(inc.package.total_bytes);
    sum_excluded += static_cast<double>(exc.package.total_bytes);
    last_included = inc;
  }
  const int n = static_cast<int>(std::size(sample_queries));
  double avg_ldv_mb = (sum_included + sum_excluded) / (2.0 * n) / 1e6;

  // The VMI package for the same experiment.
  auto q11 = ldv::tpch::FindQuery("Q1-1");
  LDV_CHECK(q11.ok());
  RunResult vmi = RunExperiment(PackageMode::kVmImage, *q11, config, workdir);
  double vmi_mb = static_cast<double>(vmi.package.total_bytes) / 1e6;

  ldv::VmImageModel vm({.scale = config.scale_factor});
  ldv::tpch::StepTimings native =
      ldv::bench::RunUnaudited(*q11, config, workdir);
  double native_selects =
      native.first_select_seconds + native.other_selects_seconds;
  double vm_selects = vm.ReplaySeconds(native_selects);

  std::printf("VM image size:              %10.2f MB (materialized)\n",
              vmi_mb);
  std::printf("average LDV package size:   %10.2f MB (over %d queries x 2 "
              "modes)\n", avg_ldv_mb, n);
  std::printf("size ratio VMI / LDV:       %10.1fx   (paper: ~80x)\n",
              vmi_mb / avg_ldv_mb);
  std::printf("\nnative select step:         %10.4f s\n", native_selects);
  std::printf("modeled VM select step:     %10.4f s (+ %.2f s boot)\n",
              vm_selects, vm.BootSeconds());
  std::printf("LDV included replay step:   %10.4f s\n",
              last_included.replay_times.first_select_seconds +
                  last_included.replay_times.other_selects_seconds);
  std::printf(
      "\nexpected shape (paper §IX-F / Fig. 8b): VMI is one to two orders of "
      "magnitude\nlarger than LDV packages and replays slightly slower than "
      "native; LDV replay is\nthe same or faster than native.\n");
  std::printf("workdir: %s\n", workdir.c_str());
  return 0;
}
