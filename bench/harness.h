#ifndef LDV_BENCH_HARNESS_H_
#define LDV_BENCH_HARNESS_H_

// Shared setup for the paper-reproduction benchmark binaries: generates the
// TPC-H database, runs the §IX-A experiment application under one of the
// four sharing configurations, replays the resulting package, and reports
// per-step timings and package sizes.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/json.h"
#include "common/logging.h"
#include "ldv/auditor.h"
#include "ldv/replayer.h"
#include "ldv/vm_image_model.h"
#include "obs/metrics.h"
#include "tpch/app.h"
#include "tpch/generator.h"
#include "tpch/queries.h"
#include "util/fsutil.h"

namespace ldv::bench {

/// Workload knobs; environment variables override the defaults so the whole
/// suite can be scaled up (LDV_BENCH_SF=0.05 ./bench_fig9_package_size).
struct BenchConfig {
  double scale_factor = 0.01;
  uint64_t seed = 7;
  int num_inserts = 1000;
  int num_selects = 10;
  int num_updates = 100;

  static BenchConfig FromEnv() {
    BenchConfig config;
    if (const char* sf = std::getenv("LDV_BENCH_SF")) {
      config.scale_factor = std::atof(sf);
    }
    if (const char* seed = std::getenv("LDV_BENCH_SEED")) {
      config.seed = static_cast<uint64_t>(std::atoll(seed));
    }
    if (const char* n = std::getenv("LDV_BENCH_INSERTS")) {
      config.num_inserts = std::atoi(n);
    }
    if (const char* n = std::getenv("LDV_BENCH_UPDATES")) {
      config.num_updates = std::atoi(n);
    }
    return config;
  }
};

/// Everything measured for one (query, mode) cell.
struct RunResult {
  tpch::StepTimings audit_times;
  tpch::StepTimings replay_times;
  AuditReport audit_report;
  ReplayReport replay_report;
  PackageInfo package;
  double replay_total_seconds = 0;
};

inline tpch::AppOptions MakeAppOptions(const tpch::QuerySpec& query,
                                       const BenchConfig& config) {
  tpch::AppOptions options;
  options.query_sql = query.sql;
  options.num_inserts = config.num_inserts;
  options.num_selects = config.num_selects;
  options.num_updates = config.num_updates;
  tpch::TpchSizes sizes = tpch::SizesFor(config.scale_factor);
  options.insert_orderkey_base = sizes.orders;
  options.update_orderkey_max = sizes.orders;
  options.customer_max = sizes.customers;
  options.seed = config.seed;
  return options;
}

inline std::string BenchServerBinary(const std::string& workdir);

/// RAII: snapshots the global metrics registry on construction and prints
/// the per-metric delta on destruction, so every benchmark cell reports what
/// the run actually did (statements audited, retries, fault injections, ...).
class MetricsDelta {
 public:
  explicit MetricsDelta(std::string label)
      : label_(std::move(label)),
        before_(obs::MetricsRegistry::Global().Snapshot()) {}

  MetricsDelta(const MetricsDelta&) = delete;
  MetricsDelta& operator=(const MetricsDelta&) = delete;

  ~MetricsDelta() {
    std::string report =
        obs::MetricsRegistry::Global().Snapshot().DeltaReport(before_);
    if (!report.empty()) {
      std::printf("metrics delta [%s]:\n%s", label_.c_str(), report.c_str());
    }
  }

 private:
  std::string label_;
  obs::MetricsSnapshot before_;
};

/// Collects (benchmark, threads) -> throughput points from the parallel
/// execution benchmarks and writes the scaling trajectory as JSON
/// (BENCH_PARALLEL.json), so runs across commits can be compared:
///   {"hardware_threads": H, "curves": {"scan": [{"threads": 1,
///    "items_per_second": ...}, ...], ...}}
class ParallelCurve {
 public:
  static ParallelCurve& Global() {
    static ParallelCurve* instance = new ParallelCurve();
    return *instance;
  }

  void Record(const std::string& bench, int threads,
              double items_per_second) {
    std::lock_guard<std::mutex> lock(mu_);
    // Keep the best of repeated runs: benchmark frameworks re-enter with
    // growing iteration counts, and the cold first pass is not the curve.
    double& cell = points_[bench][threads];
    cell = cell > items_per_second ? cell : items_per_second;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return points_.empty();
  }

  Status WriteTo(const std::string& path) const {
    std::lock_guard<std::mutex> lock(mu_);
    Json root = Json::MakeObject();
    unsigned hw = std::thread::hardware_concurrency();
    root.Set("hardware_threads", Json::MakeInt(hw == 0 ? 1 : hw));
    Json curves = Json::MakeObject();
    for (const auto& [bench, curve] : points_) {
      Json arr = Json::MakeArray();
      for (const auto& [threads, throughput] : curve) {
        Json point = Json::MakeObject();
        point.Set("threads", Json::MakeInt(threads));
        point.Set("items_per_second", Json::MakeDouble(throughput));
        arr.Append(std::move(point));
      }
      curves.Set(bench, std::move(arr));
    }
    root.Set("curves", std::move(curves));
    return WriteStringToFile(path, root.Dump(true) + "\n");
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::map<int, double>> points_;
};

/// Runs audit + replay of the experiment app for one query under one mode.
/// Fails loudly (aborts) on any error or on replay divergence — a benchmark
/// must not silently measure a broken pipeline.
inline RunResult RunExperiment(PackageMode mode, const tpch::QuerySpec& query,
                               const BenchConfig& config,
                               const std::string& workdir) {
  auto fail = [&](const Status& status) {
    std::fprintf(stderr, "bench: %s [%s %s]\n", status.ToString().c_str(),
                 std::string(PackageModeName(mode)).c_str(),
                 query.id.c_str());
    std::abort();
  };

  storage::Database db;
  tpch::GenOptions gen;
  gen.scale_factor = config.scale_factor;
  if (Status s = tpch::Generate(&db, gen); !s.ok()) fail(s);

  std::string name =
      query.id + "_" + std::string(PackageModeName(mode));
  MetricsDelta metrics_delta(name);
  AuditOptions audit;
  audit.mode = mode;
  audit.package_dir = workdir + "/pkg_" + name;
  audit.sandbox_root = workdir + "/sandbox_" + name;
  audit.server_binary_path = BenchServerBinary(workdir);
  audit.record_tuple_nodes = false;  // streaming packager path only
  VmImageModel vm({.scale = config.scale_factor});
  audit.vm_base_image_bytes = vm.ScaledBaseImageBytes();
  if (Status s = MakeDirs(audit.sandbox_root); !s.ok()) fail(s);

  RunResult result;
  tpch::AppOptions app = MakeAppOptions(query, config);
  {
    Auditor auditor(&db, audit);
    auto report = auditor.Run(tpch::MakeExperimentApp(app, &result.audit_times));
    if (!report.ok()) fail(report.status());
    result.audit_report = *report;
  }
  {
    ReplayOptions replay;
    replay.package_dir = audit.package_dir;
    replay.scratch_dir = workdir + "/scratch_" + name;
    WallTimer timer;
    auto replayer = Replayer::Open(replay);
    if (!replayer.ok()) fail(replayer.status());
    auto report =
        (*replayer)->Run(tpch::MakeExperimentApp(app, &result.replay_times));
    if (!report.ok()) fail(report.status());
    result.replay_report = *report;
    result.replay_total_seconds = timer.Seconds();
  }
  if (result.replay_times.result_fingerprint !=
      result.audit_times.result_fingerprint) {
    fail(Status::ReplayMismatch("replay fingerprint diverged"));
  }
  auto info = InspectPackage(audit.package_dir);
  if (!info.ok()) fail(info.status());
  result.package = *info;
  return result;
}

/// Baseline: the same application against a plain server with NO monitoring
/// (the paper's "standard PostgreSQL server" reference measurement).
inline tpch::StepTimings RunUnaudited(const tpch::QuerySpec& query,
                                      const BenchConfig& config,
                                      const std::string& workdir) {
  storage::Database db;
  tpch::GenOptions gen;
  gen.scale_factor = config.scale_factor;
  LDV_CHECK_OK(tpch::Generate(&db, gen));
  net::EngineHandle engine(&db);

  /// Minimal un-instrumented environment.
  class PlainEnv final : public AppEnv {
   public:
    PlainEnv(net::EngineHandle* engine, const std::string& sandbox)
        : vfs_(sandbox), sim_os_(&vfs_, &clock_, nullptr), engine_(engine) {}
    os::ProcessContext& root_process() override { return *sim_os_.root(); }
    Result<net::DbClient*> OpenDbConnection(os::ProcessContext&) override {
      clients_.push_back(std::make_unique<net::LocalDbClient>(engine_));
      return clients_.back().get();
    }

   private:
    LogicalClock clock_;
    os::Vfs vfs_;
    os::SimOs sim_os_;
    net::EngineHandle* engine_;
    std::vector<std::unique_ptr<net::DbClient>> clients_;
  };

  std::string sandbox = workdir + "/plain_" + query.id;
  MetricsDelta metrics_delta("plain_" + query.id);
  LDV_CHECK_OK(MakeDirs(sandbox));
  PlainEnv env(&engine, sandbox);
  tpch::StepTimings timings;
  tpch::AppOptions app = MakeAppOptions(query, config);
  LDV_CHECK_OK(tpch::MakeExperimentApp(app, &timings)(env));
  return timings;
}

inline std::string BenchWorkdir(const char* name) {
  auto dir = MakeTempDir(std::string("ldv_bench_") + name + "_");
  LDV_CHECK(dir.ok());
  return *dir;
}

/// The DB server binary embedded into packages. Debug builds carry tens of
/// MB of debug info that would dwarf the data in Fig. 9's size comparison, so
/// benchmarks embed a stripped copy (what a release package would ship).
inline std::string BenchServerBinary(const std::string& workdir) {
  static std::string cached;
  if (!cached.empty()) return cached;
  std::string source = FindLdvServerBinary();
  if (source.empty()) return source;
  std::string stripped = workdir + "/ldv_server.stripped";
  if (!CopyFile(source, stripped).ok()) return source;
  std::string cmd = "strip -s '" + stripped + "' 2>/dev/null";
  if (std::system(cmd.c_str()) != 0) return source;
  cached = stripped;
  return cached;
}

}  // namespace ldv::bench

#endif  // LDV_BENCH_HARNESS_H_
