// Figure 8 (a+b): execution time of each of the 18 Table II queries during
// audit (left) and replay (right), per configuration; replay additionally
// includes the modeled VM baseline of §IX-F.
//
// The reported number is the average wall time of one query execution inside
// the experiment application (the Select step / 10). Inserts and updates are
// scaled down (they are Figure 7's subject) so the 18x3 sweep stays fast;
// override with LDV_BENCH_INSERTS / LDV_BENCH_UPDATES / LDV_BENCH_SF.

#include <cstdio>
#include <cstdlib>

#include "harness.h"

using ldv::PackageMode;
using ldv::bench::BenchConfig;
using ldv::bench::RunExperiment;
using ldv::bench::RunResult;

int main() {
  BenchConfig config = BenchConfig::FromEnv();
  if (std::getenv("LDV_BENCH_INSERTS") == nullptr) config.num_inserts = 100;
  if (std::getenv("LDV_BENCH_UPDATES") == nullptr) config.num_updates = 20;
  std::string workdir = ldv::bench::BenchWorkdir("fig8");

  ldv::VmImageModel vm({.scale = config.scale_factor});

  std::printf(
      "Figure 8 — per-query execution time (avg seconds per query "
      "execution), TPC-H sf=%.3f\n\n", config.scale_factor);
  std::printf("%-6s | %10s %10s %10s | %10s %10s %10s %10s\n", "query",
              "audit:ptu", "audit:inc", "audit:exc", "rep:ptu", "rep:inc",
              "rep:exc", "rep:vm");

  const int n = config.num_selects;
  for (const ldv::tpch::QuerySpec& query : ldv::tpch::ExperimentQueries()) {
    double audit_s[3];
    double replay_s[3];
    const PackageMode modes[] = {PackageMode::kPtu,
                                 PackageMode::kServerIncluded,
                                 PackageMode::kServerExcluded};
    for (int m = 0; m < 3; ++m) {
      RunResult r = RunExperiment(modes[m], query, config, workdir);
      audit_s[m] = (r.audit_times.first_select_seconds +
                    r.audit_times.other_selects_seconds) /
                   n;
      replay_s[m] = (r.replay_times.first_select_seconds +
                     r.replay_times.other_selects_seconds) /
                    n;
    }
    // VM baseline (modeled): native query time inside a VM with the §IX-F
    // slowdown; boot time is amortized outside per-query numbers, as in the
    // paper's Fig. 8b.
    double vm_replay = vm.ReplaySeconds(replay_s[0]);
    std::printf("%-6s | %10.5f %10.5f %10.5f | %10.5f %10.5f %10.5f %10.5f\n",
                query.id.c_str(), audit_s[0], audit_s[1], audit_s[2],
                replay_s[0], replay_s[1], replay_s[2], vm_replay);
  }
  std::printf(
      "\nexpected shape (paper Fig. 8): audit time grows with selectivity; "
      "server-included\naudit pays the provenance overhead at every "
      "selectivity; replay of server-excluded\nis fastest (linear in result "
      "size — extreme for the single-row Q3), server-included\nreplay "
      "matches or beats the full-DB configurations, and the VM is slowest.\n");
  std::printf("workdir: %s\n", workdir.c_str());
  return 0;
}
