// Prepared-statement throughput benchmark (DESIGN.md §13): the same
// parameterized SELECT is executed repeatedly, once as re-sent literal SQL
// (the engine parses and plans every request) and once as EXECUTE against a
// prepared handle (bind-and-execute through the shared plan cache). The
// quantity measured is exactly the per-request parse/plan work the cache
// removes, so the query is deliberately text-heavy and data-light: a long
// predicate over a small table.
//
// Statements run in-process through LocalDbClient at dop 1 — socket framing
// and morsel fan-out would add identical constants to both sides and dilute
// the ratio being measured.
//
// Writes BENCH_PREPARED.json (path = argv[1], default LDV_BENCH_PREPARED_OUT,
// default "BENCH_PREPARED.json"); tools/bench_smoke_check.py enforces the
// repeated-statement bound: >= 2x EXECUTE QPS vs literal QPS on boxes with
// >= 4 hardware threads, a loud SKIP plus a no-regression floor otherwise.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "exec/plan_cache.h"
#include "net/db_client.h"
#include "storage/database.h"
#include "util/fsutil.h"
#include "util/thread_pool.h"

namespace {

using ldv::net::EngineHandle;
using ldv::net::LocalDbClient;

constexpr int kRows = 16;
constexpr int64_t kRunNanos = 400'000'000;  // 400 ms per side

// A planning-heavy, execution-light statement: many projection expressions
// and a deep predicate over a 256-row table. The placeholders are the two
// selectivity knobs a real application would re-bind per request.
constexpr char kParamSql[] =
    "SELECT grp, count(*), sum(val * 2 + 1), min(val - grp), max(val + grp), "
    "avg(val), sum(val) / (count(*) + 1) "
    "FROM items WHERE (val > ? OR val < ?) AND "
    "(grp = 0 OR grp = 1 OR grp = 2 OR grp = 3 OR grp = 4 OR grp = 5 OR "
    "grp = 6 OR grp = 7) AND id + grp >= 0 AND name <> 'missing' "
    "GROUP BY grp ORDER BY grp";

bool FillDatabase(LocalDbClient* client) {
  if (!client
           ->Query("CREATE TABLE items (id INT, grp INT, val INT, name TEXT)")
           .ok()) {
    return false;
  }
  std::string sql = "INSERT INTO items VALUES ";
  for (int i = 0; i < kRows; ++i) {
    if (i > 0) sql += ",";
    sql += "(" + std::to_string(i) + "," + std::to_string(i % 8) + "," +
           std::to_string(i % 100) + ",'row" + std::to_string(i % 10) + "')";
  }
  return client->Query(sql).ok();
}

/// Replaces the two '?' with literal bounds derived from the iteration
/// counter — the text the literal side re-sends every request.
std::string InlinedSql(int i) {
  std::string out;
  int slot = 0;
  for (const char* p = kParamSql; *p != '\0'; ++p) {
    if (*p == '?') {
      out += std::to_string(slot++ == 0 ? 40 + i % 20 : 10 + i % 5);
    } else {
      out.push_back(*p);
    }
  }
  return out;
}

/// Runs `fn(i)` for kRunNanos; returns statements/second. `fn` returns
/// false on error.
template <typename Fn>
double MeasureQps(Fn fn) {
  const int64_t start = ldv::NowNanos();
  int64_t completed = 0;
  while (ldv::NowNanos() - start < kRunNanos) {
    for (int burst = 0; burst < 20; ++burst) {
      if (!fn(static_cast<int>(completed))) {
        std::fprintf(stderr, "bench_prepared: statement failed\n");
        std::exit(1);
      }
      ++completed;
    }
  }
  const double seconds = static_cast<double>(ldv::NowNanos() - start) / 1e9;
  return static_cast<double>(completed) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_PREPARED.json";
  if (const char* env = std::getenv("LDV_BENCH_PREPARED_OUT")) out = env;
  if (argc > 1) out = argv[1];

  // Serial execution: the ratio must isolate parse/plan savings, not morsel
  // scheduling.
  ldv::ThreadPool::SetDefaultDop(1);

  ldv::storage::Database db;
  EngineHandle engine(&db);
  LocalDbClient client(&engine);
  if (!FillDatabase(&client)) {
    std::fprintf(stderr, "bench_prepared: database fill failed\n");
    return 1;
  }
  if (!client.Query(std::string("PREPARE q AS ") + kParamSql).ok()) {
    std::fprintf(stderr, "bench_prepared: PREPARE failed\n");
    return 1;
  }

  // Warm both paths (first EXECUTE plans and populates the cache).
  for (int i = 0; i < 50; ++i) {
    if (!client.Query(InlinedSql(i)).ok() ||
        !client
             .Query("EXECUTE q (" + std::to_string(40 + i % 20) + ", " +
                    std::to_string(10 + i % 5) + ")")
             .ok()) {
      std::fprintf(stderr, "bench_prepared: warmup failed\n");
      return 1;
    }
  }

  const double literal_qps =
      MeasureQps([&](int i) { return client.Query(InlinedSql(i)).ok(); });
  const double execute_qps = MeasureQps([&](int i) {
    return client
        .Query("EXECUTE q (" + std::to_string(40 + i % 20) + ", " +
               std::to_string(10 + i % 5) + ")")
        .ok();
  });
  const double speedup = execute_qps / literal_qps;
  std::printf(
      "bench_prepared: literal %.0f qps, execute %.0f qps = %.2fx\n",
      literal_qps, execute_qps, speedup);

  ldv::Json doc = ldv::Json::MakeObject();
  doc.Set("hardware_threads",
          ldv::Json::MakeInt(std::thread::hardware_concurrency()));
  doc.Set("rows", ldv::Json::MakeInt(kRows));
  doc.Set("duration_ms", ldv::Json::MakeInt(kRunNanos / 1'000'000));
  doc.Set("literal_qps", ldv::Json::MakeDouble(literal_qps));
  doc.Set("execute_qps", ldv::Json::MakeDouble(execute_qps));
  doc.Set("speedup", ldv::Json::MakeDouble(speedup));
  doc.Set("plan_cache_entries",
          ldv::Json::MakeInt(
              static_cast<int64_t>(ldv::exec::PlanCache::Global().entries())));
  ldv::Status written = ldv::WriteStringToFile(out, doc.Dump(true) + "\n");
  if (!written.ok()) {
    std::fprintf(stderr, "bench_prepared: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("bench_prepared: wrote %s\n", out.c_str());
  return 0;
}
