// WAL streaming replication benchmark (DESIGN.md §14): an in-process
// primary + hot standby pair under semi-synchronous commit acks. Three
// quantities are measured:
//
//   1. Steady-state replication lag under write load — LSNs the standby
//      trails the primary by, sampled between commits (semi-sync keeps it
//      near zero at commit boundaries).
//   2. Standby read QPS vs primary read QPS — the standby serves SELECTs
//      from MVCC snapshots and must not tax reads; the hot-standby promise
//      is a usable read replica, not a cold spare.
//   3. Failover time — from killing the primary's server to the first
//      successful write through a RetryingDbClient::ForEndpoints client
//      configured [primary, standby], with the standby promoted in between.
//
// Writes BENCH_REPL.json (path = argv[1], default LDV_BENCH_REPL_OUT,
// default "BENCH_REPL.json"); tools/bench_smoke_check.py enforces
// failover <= 2 s and standby reads >= 0.8x primary on boxes with >= 4
// hardware threads, a loud SKIP plus relaxed floors otherwise.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "exec/wal_redo.h"
#include "net/db_client.h"
#include "net/db_server.h"
#include "net/retrying_db_client.h"
#include "repl/primary.h"
#include "repl/replication.h"
#include "repl/standby.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "util/fsutil.h"

namespace {

using ldv::Result;
using ldv::Status;

constexpr int kLoadRows = 2000;              // semi-sync write-load phase
constexpr int64_t kReadNanos = 300'000'000;  // per read-QPS side

/// One in-process server: engine with WAL, replication manager, socket
/// server with the repl verbs wired, optional standby replicator — the same
/// hookup ldv_server_main does.
struct Node {
  ldv::storage::Database db;
  std::unique_ptr<ldv::net::EngineHandle> engine;
  std::unique_ptr<ldv::repl::ReplicationManager> manager;
  std::unique_ptr<ldv::net::DbServer> server;
  std::unique_ptr<ldv::repl::StandbyReplicator> replicator;

  ~Node() {
    if (manager != nullptr) manager->Shutdown();
    if (server != nullptr) server->Stop();
    if (replicator != nullptr) replicator->Stop();
  }
};

Status OpenNode(const std::string& root, const std::string& name,
                const std::string& replicate_from, Node* node) {
  const std::string data_dir = ldv::JoinPath(root, name + "-data");
  const std::string wal_dir = ldv::JoinPath(root, name + "-wal");
  ldv::storage::RecoveryStats stats;
  LDV_RETURN_IF_ERROR(
      ldv::exec::RecoverWithWal(&node->db, data_dir, wal_dir, &stats));
  LDV_ASSIGN_OR_RETURN(
      std::unique_ptr<ldv::storage::Wal> wal,
      ldv::storage::Wal::Open(wal_dir, ldv::storage::WalOptions{},
                              stats.next_lsn));
  node->engine = std::make_unique<ldv::net::EngineHandle>(&node->db);
  ldv::net::EngineDurabilityOptions durability;
  durability.data_dir = data_dir;
  node->engine->AttachWal(std::move(wal), durability);
  node->manager =
      std::make_unique<ldv::repl::ReplicationManager>(node->engine->wal());
  ldv::repl::ReplicationManager* manager = node->manager.get();
  node->engine->set_commit_ack_barrier(
      [manager](uint64_t lsn) { return manager->WaitDurable(lsn); });
  node->engine->set_wal_retire_floor(
      [manager] { return manager->RetireFloor(); });
  node->server = std::make_unique<ldv::net::DbServer>(
      node->engine.get(), ldv::JoinPath(root, name + ".sock"));
  if (!replicate_from.empty()) {
    ldv::repl::StandbyReplicator::Options options;
    options.standby_name = name;
    node->replicator = std::make_unique<ldv::repl::StandbyReplicator>(
        node->engine.get(), replicate_from, options);
    node->manager->set_role("standby");
  }
  ldv::repl::StandbyReplicator* replicator = node->replicator.get();
  node->server->set_repl_handler(
      [manager, replicator](const ldv::net::DbRequest& request)
          -> Result<ldv::exec::ResultSet> {
        if (request.kind == ldv::net::RequestKind::kPromote &&
            replicator != nullptr) {
          const uint64_t applied = replicator->Promote();
          manager->set_role("primary");
          return ldv::repl::MakePromoteResult("primary", applied);
        }
        return manager->HandleRequest(request);
      });
  LDV_RETURN_IF_ERROR(node->server->Start());
  if (node->replicator != nullptr) node->replicator->Start();
  return Status::Ok();
}

Result<ldv::exec::ResultSet> Run(Node* node, const std::string& sql) {
  ldv::net::DbRequest request;
  request.sql = sql;
  return node->engine->Execute(request);
}

/// Aggregating SELECT over the replicated table — identical text on both
/// sides so the ratio isolates the standby's snapshot read path.
double MeasureReadQps(Node* node) {
  const std::string sql =
      "SELECT count(*), sum(v), min(v), max(v) FROM t "
      "WHERE id >= 100 AND v < 1000000";
  const int64_t start = ldv::NowNanos();
  int64_t completed = 0;
  while (ldv::NowNanos() - start < kReadNanos) {
    for (int burst = 0; burst < 20; ++burst) {
      Result<ldv::exec::ResultSet> rows = Run(node, sql);
      if (!rows.ok()) {
        std::fprintf(stderr, "bench_repl: read failed: %s\n",
                     rows.status().ToString().c_str());
        std::exit(1);
      }
      ++completed;
    }
  }
  const double seconds = static_cast<double>(ldv::NowNanos() - start) / 1e9;
  return static_cast<double>(completed) / seconds;
}

int Fail(const char* what, const Status& status) {
  std::fprintf(stderr, "bench_repl: %s: %s\n", what, status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_REPL.json";
  if (const char* env = std::getenv("LDV_BENCH_REPL_OUT")) out = env;
  if (argc > 1) out = argv[1];

  Result<std::string> root = ldv::MakeTempDir("bench_repl");
  if (!root.ok()) return Fail("mktemp", root.status());

  Node primary;
  Status up = OpenNode(*root, "primary", "", &primary);
  if (!up.ok()) return Fail("primary open", up);
  Node standby;
  up = OpenNode(*root, "standby", primary.server->socket_path(), &standby);
  if (!up.ok()) return Fail("standby open", up);

  for (int waited = 0; primary.manager->standby_count() < 1; waited += 10) {
    if (waited >= 10'000) {
      std::fprintf(stderr, "bench_repl: standby never subscribed\n");
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  Result<ldv::exec::ResultSet> created =
      Run(&primary, "CREATE TABLE t (id INT, v INT)");
  if (!created.ok()) return Fail("create", created.status());

  // Phase 1: semi-sync write load with lag sampling.
  int64_t lag_sum = 0;
  uint64_t lag_max = 0;
  int64_t lag_samples = 0;
  const int64_t load_start = ldv::NowNanos();
  for (int i = 0; i < kLoadRows; ++i) {
    Result<ldv::exec::ResultSet> inserted =
        Run(&primary, "INSERT INTO t VALUES (" + std::to_string(i) + ", " +
                          std::to_string(i * 7 % 9973) + ")");
    if (!inserted.ok()) return Fail("insert", inserted.status());
    if (i % 16 == 0) {
      const uint64_t head = primary.engine->wal()->last_appended_lsn();
      const uint64_t applied = standby.replicator->applied_lsn();
      const uint64_t lag = head > applied ? head - applied : 0;
      lag_sum += static_cast<int64_t>(lag);
      lag_max = std::max(lag_max, lag);
      ++lag_samples;
    }
  }
  const double load_seconds =
      static_cast<double>(ldv::NowNanos() - load_start) / 1e9;
  const double write_qps = static_cast<double>(kLoadRows) / load_seconds;
  const double lag_mean =
      static_cast<double>(lag_sum) / static_cast<double>(lag_samples);

  // Phase 2: read QPS on both sides (the standby reads MVCC snapshots while
  // its replicator keeps long-polling an idle stream).
  const double primary_read_qps = MeasureReadQps(&primary);
  const double standby_read_qps = MeasureReadQps(&standby);
  const double read_ratio = standby_read_qps / primary_read_qps;

  // Phase 3: failover. The client is configured [primary, standby] and
  // already routed one write; then the primary dies, the standby is
  // promoted, and the clock runs until the client's next write lands.
  std::unique_ptr<ldv::net::RetryingDbClient> client =
      ldv::net::RetryingDbClient::ForEndpoints(
          {primary.server->socket_path(), standby.server->socket_path()});
  ldv::net::DbRequest write;
  write.sql = "INSERT INTO t VALUES (-1, -1)";
  Result<ldv::exec::ResultSet> routed = client->Execute(write);
  if (!routed.ok()) return Fail("pre-failover write", routed.status());

  primary.manager->Shutdown();
  primary.server->Stop();
  const int64_t failover_start = ldv::NowNanos();
  standby.replicator->Promote();
  standby.manager->set_role("primary");
  double failover_ms = -1;
  write.sql = "INSERT INTO t VALUES (-2, -2)";
  for (int attempt = 0; attempt < 1000; ++attempt) {
    if (client->Execute(write).ok()) {
      failover_ms =
          static_cast<double>(ldv::NowNanos() - failover_start) / 1e6;
      break;
    }
  }
  if (failover_ms < 0) {
    std::fprintf(stderr, "bench_repl: no write succeeded after failover\n");
    return 1;
  }

  std::printf(
      "bench_repl: %.0f writes/s semi-sync (lag mean %.2f max %llu lsn), "
      "reads %.0f qps primary vs %.0f qps standby = %.2fx, failover %.1f ms "
      "(%lld endpoint rotations)\n",
      write_qps, lag_mean, static_cast<unsigned long long>(lag_max),
      primary_read_qps, standby_read_qps, read_ratio, failover_ms,
      static_cast<long long>(client->failovers()));

  ldv::Json doc = ldv::Json::MakeObject();
  doc.Set("hardware_threads",
          ldv::Json::MakeInt(std::thread::hardware_concurrency()));
  doc.Set("rows", ldv::Json::MakeInt(kLoadRows));
  doc.Set("write_qps", ldv::Json::MakeDouble(write_qps));
  doc.Set("steady_lag_mean_lsn", ldv::Json::MakeDouble(lag_mean));
  doc.Set("steady_lag_max_lsn",
          ldv::Json::MakeInt(static_cast<int64_t>(lag_max)));
  doc.Set("primary_read_qps", ldv::Json::MakeDouble(primary_read_qps));
  doc.Set("standby_read_qps", ldv::Json::MakeDouble(standby_read_qps));
  doc.Set("standby_read_ratio", ldv::Json::MakeDouble(read_ratio));
  doc.Set("failover_ms", ldv::Json::MakeDouble(failover_ms));
  doc.Set("endpoint_rotations", ldv::Json::MakeInt(client->failovers()));
  Status written = ldv::WriteStringToFile(out, doc.Dump(true) + "\n");
  if (!written.ok()) return Fail("write output", written);
  std::printf("bench_repl: wrote %s\n", out.c_str());
  (void)ldv::RemoveAll(*root);
  return 0;
}
