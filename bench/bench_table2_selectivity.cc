// Table II: the 18 experiment queries with their intended selectivities.
// Verifies that the scale-invariant generator reproduces the paper's Sel.
// column: measured fraction of qualifying tuples vs the design target.

#include <cstdio>

#include "net/db_client.h"
#include "tpch/generator.h"
#include "tpch/queries.h"
#include "harness.h"

int main() {
  ldv::bench::BenchConfig config = ldv::bench::BenchConfig::FromEnv();
  ldv::storage::Database db;
  ldv::tpch::GenOptions gen;
  gen.scale_factor = config.scale_factor;
  LDV_CHECK_OK(ldv::tpch::Generate(&db, gen));
  ldv::net::EngineHandle engine(&db);
  ldv::net::LocalDbClient client(&engine);

  const int64_t lineitems = db.FindTable("lineitem")->live_row_count();
  std::printf(
      "Table II — experiment queries, TPC-H sf=%.3f (%lld lineitem rows)\n\n",
      config.scale_factor, static_cast<long long>(lineitems));
  std::printf("%-6s %-9s %10s %12s %12s   %s\n", "query", "param", "rows",
              "paper-sel%", "measured%", "sql");

  for (const ldv::tpch::QuerySpec& query : ldv::tpch::ExperimentQueries()) {
    auto result = client.Query(query.sql);
    LDV_CHECK(result.ok());
    // Measured selectivity: qualifying lineitem rows / total lineitem rows.
    // Q3 returns count(*) directly; Q4 groups, so re-measure via Q2's shape.
    int64_t qualifying;
    if (query.family == 3) {
      qualifying = result->rows[0][0].AsInt();
    } else if (query.family == 4) {
      auto flat = client.Query(
          "SELECT count(*) FROM lineitem l, orders o WHERE l.l_orderkey = "
          "o.o_orderkey AND l_suppkey BETWEEN 1 AND " +
          query.param);
      LDV_CHECK(flat.ok());
      qualifying = flat->rows[0][0].AsInt();
    } else {
      qualifying = static_cast<int64_t>(result->rows.size());
    }
    double measured = 100.0 * static_cast<double>(qualifying) /
                      static_cast<double>(lineitems);
    std::printf("%-6s %-9s %10lld %12.3f %12.3f   %.60s...\n",
                query.id.c_str(), query.param.c_str(),
                static_cast<long long>(qualifying),
                query.selectivity * 100.0, measured, query.sql.c_str());
  }
  std::printf(
      "\npaper Sel. column: Q1/Q4 1/2/5/10/25%%; Q2/Q3 0.06/0.66/6.6/66%% "
      "(variant order as printed in Table II).\n");
  return 0;
}
