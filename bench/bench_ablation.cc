// Ablations of the two LDV design choices DESIGN.md calls out:
//
// A1 — provenance-based DB slicing. Compares the server-included package's
//      tuple subset against shipping the whole accessed tables (what a
//      DB-unaware virtualizer must do), across the Q1 selectivity sweep.
//
// A2 — temporal dependency pruning (Definition 11). Counts inferred
//      dependencies on randomized traces with and without the temporal
//      constraints: the difference is the spurious dependencies (and thus
//      package content) that the paper's temporal reasoning eliminates.

#include <cstdio>

#include "harness.h"
#include "trace/inference.h"
#include "util/rng.h"
#include "util/strings.h"

using ldv::PackageMode;
using ldv::bench::BenchConfig;
using ldv::bench::RunExperiment;
using ldv::bench::RunResult;

namespace {

void AblationSlicing(const BenchConfig& config, const std::string& workdir) {
  std::printf(
      "A1 — DB slicing: packaged tuple subset vs whole accessed tables "
      "(sf=%.3f)\n\n", config.scale_factor);
  std::printf("%-6s %12s %14s %14s %12s\n", "query", "subset(MB)",
              "whole-tbls(MB)", "subset-tuples", "reduction");

  for (const char* id : {"Q1-1", "Q1-2", "Q1-3", "Q1-4", "Q1-5", "Q3-4"}) {
    auto query = ldv::tpch::FindQuery(id);
    LDV_CHECK(query.ok());
    BenchConfig c = config;
    c.num_inserts = 50;
    c.num_updates = 10;
    RunResult inc =
        RunExperiment(PackageMode::kServerIncluded, *query, c, workdir);
    RunResult ptu = RunExperiment(PackageMode::kPtu, *query, c, workdir);
    double subset_mb =
        static_cast<double>(inc.package.tuple_data_bytes) / 1e6;
    double whole_mb = static_cast<double>(ptu.package.full_data_bytes) / 1e6;
    std::printf("%-6s %12.3f %14.3f %14lld %11.1fx\n", id, subset_mb,
                whole_mb,
                static_cast<long long>(inc.package.packaged_tuples),
                whole_mb / std::max(subset_mb, 1e-6));
  }
  std::printf("\n");
}

void AblationTemporal() {
  std::printf(
      "A2 — temporal pruning: inferred dependencies with vs without "
      "Definition 11's\n     temporal constraints, randomized P_BB traces\n\n");
  std::printf("%8s %10s %14s %14s %10s\n", "files", "events", "deps(temporal)",
              "deps(naive)", "pruned");

  ldv::Rng rng(1234);
  for (int files : {10, 20, 40, 80}) {
    ldv::trace::TraceGraph g;
    std::vector<ldv::trace::NodeId> file_nodes;
    std::vector<ldv::trace::NodeId> proc_nodes;
    for (int i = 0; i < files; ++i) {
      file_nodes.push_back(g.GetOrAddNode(ldv::trace::NodeType::kFile,
                                          "f" + std::to_string(i)));
    }
    for (int i = 0; i < files / 3 + 1; ++i) {
      proc_nodes.push_back(g.GetOrAddNode(ldv::trace::NodeType::kProcess,
                                          "p" + std::to_string(i)));
    }
    int events = files * 4;
    for (int i = 0; i < events; ++i) {
      auto file = file_nodes[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(file_nodes.size()) - 1))];
      auto proc = proc_nodes[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(proc_nodes.size()) - 1))];
      int64_t begin = rng.Uniform(1, 200);
      int64_t end = begin + rng.Uniform(0, 10);
      if (rng.Bernoulli(0.5)) {
        (void)g.MergeEdge(file, proc, ldv::trace::EdgeType::kReadFrom,
                          {begin, end});
      } else {
        (void)g.MergeEdge(proc, file, ldv::trace::EdgeType::kHasWritten,
                          {begin, end});
      }
    }
    ldv::trace::DependencyAnalyzer analyzer(&g);
    int64_t with_temporal = 0;
    for (auto f : file_nodes) {
      with_temporal += static_cast<int64_t>(analyzer.DependenciesOf(f).size());
    }
    analyzer.set_use_temporal_constraints(false);
    int64_t naive = 0;
    for (auto f : file_nodes) {
      naive += static_cast<int64_t>(analyzer.DependenciesOf(f).size());
    }
    std::printf("%8d %10d %14lld %14lld %9.1f%%\n", files, events,
                static_cast<long long>(with_temporal),
                static_cast<long long>(naive),
                100.0 * static_cast<double>(naive - with_temporal) /
                    static_cast<double>(std::max<int64_t>(naive, 1)));
  }
  std::printf(
      "\n'pruned' = spurious dependencies removed by temporal causality — "
      "data that a\nnaive (atemporal) packager would include "
      "unnecessarily.\n");
}

void AblationIndex(const BenchConfig& config) {
  std::printf(
      "A3 — hash index on orders(o_orderkey): per-update cost of the "
      "experiment app's\n     Update step (100 single-row updates), with and "
      "without the index, with and\n     without reenactment provenance "
      "(sf=%.3f)\n\n", config.scale_factor);
  std::printf("%-24s %14s %14s\n", "configuration", "no-index(ms)",
              "indexed(ms)");

  for (bool provenance : {false, true}) {
    double ms[2];
    for (int indexed = 0; indexed < 2; ++indexed) {
      ldv::storage::Database db;
      ldv::tpch::GenOptions gen;
      gen.scale_factor = config.scale_factor;
      LDV_CHECK_OK(ldv::tpch::Generate(&db, gen));
      db.FindTable("orders")->set_provenance_tracking(true);
      ldv::exec::Executor executor(&db);
      if (indexed != 0) {
        LDV_CHECK_OK(executor
                         .Execute("CREATE INDEX idx ON orders (o_orderkey)",
                                  {})
                         .status());
      }
      ldv::tpch::TpchSizes sizes = ldv::tpch::SizesFor(config.scale_factor);
      ldv::Rng rng(11);
      ldv::WallTimer timer;
      const int updates = 100;
      for (int i = 0; i < updates; ++i) {
        std::string sql = ldv::StrFormat(
            "UPDATE orders SET o_comment = 'a3-%d' WHERE o_orderkey = %lld",
            i, static_cast<long long>(rng.Uniform(1, sizes.orders)));
        if (provenance) sql = "PROVENANCE " + sql;
        LDV_CHECK_OK(executor.Execute(sql, {}).status());
      }
      ms[indexed] = timer.Seconds() * 1000.0 / updates;
    }
    std::printf("%-24s %14.4f %14.4f\n",
                provenance ? "with reenactment prov." : "plain updates",
                ms[0], ms[1]);
  }
  std::printf(
      "\nThe paper's testbed has primary-key indexes, making the provenance "
      "queries the\ndominant update-audit cost; without an index our scans "
      "dominate instead. The\ndefault benchmarks run unindexed (see "
      "EXPERIMENTS.md).\n\n");
}

}  // namespace

int main() {
  BenchConfig config = BenchConfig::FromEnv();
  std::string workdir = ldv::bench::BenchWorkdir("ablation");
  AblationSlicing(config, workdir);
  AblationIndex(config);
  AblationTemporal();
  std::printf("workdir: %s\n", workdir.c_str());
  return 0;
}
