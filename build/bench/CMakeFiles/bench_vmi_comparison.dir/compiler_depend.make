# Empty compiler generated dependencies file for bench_vmi_comparison.
# This may be replaced when dependencies are built.
