file(REMOVE_RECURSE
  "CMakeFiles/bench_vmi_comparison.dir/bench_vmi_comparison.cc.o"
  "CMakeFiles/bench_vmi_comparison.dir/bench_vmi_comparison.cc.o.d"
  "bench_vmi_comparison"
  "bench_vmi_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vmi_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
