# Empty dependencies file for bench_table3_contents.
# This may be replaced when dependencies are built.
