file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_contents.dir/bench_table3_contents.cc.o"
  "CMakeFiles/bench_table3_contents.dir/bench_table3_contents.cc.o.d"
  "bench_table3_contents"
  "bench_table3_contents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_contents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
