# Empty compiler generated dependencies file for ldv.
# This may be replaced when dependencies are built.
