file(REMOVE_RECURSE
  "CMakeFiles/ldv.dir/ldv_cli_main.cc.o"
  "CMakeFiles/ldv.dir/ldv_cli_main.cc.o.d"
  "ldv"
  "ldv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
