# Empty dependencies file for ldv_server.
# This may be replaced when dependencies are built.
