
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/ldv_server_main.cc" "tools/CMakeFiles/ldv_server.dir/ldv_server_main.cc.o" "gcc" "tools/CMakeFiles/ldv_server.dir/ldv_server_main.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ldv_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
