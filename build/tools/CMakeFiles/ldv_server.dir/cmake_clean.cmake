file(REMOVE_RECURSE
  "CMakeFiles/ldv_server.dir/ldv_server_main.cc.o"
  "CMakeFiles/ldv_server.dir/ldv_server_main.cc.o.d"
  "ldv_server"
  "ldv_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldv_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
