# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/sql_parser_test[1]_include.cmake")
include("/root/repo/build/tests/exec_select_test[1]_include.cmake")
include("/root/repo/build/tests/exec_dml_test[1]_include.cmake")
include("/root/repo/build/tests/lineage_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/inference_test[1]_include.cmake")
include("/root/repo/build/tests/ldv_audit_replay_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_test[1]_include.cmake")
include("/root/repo/build/tests/manifest_test[1]_include.cmake")
include("/root/repo/build/tests/exec_features_test[1]_include.cmake")
include("/root/repo/build/tests/obs_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/replay_log_test[1]_include.cmake")
