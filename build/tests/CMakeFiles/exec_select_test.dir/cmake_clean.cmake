file(REMOVE_RECURSE
  "CMakeFiles/exec_select_test.dir/exec_select_test.cc.o"
  "CMakeFiles/exec_select_test.dir/exec_select_test.cc.o.d"
  "exec_select_test"
  "exec_select_test.pdb"
  "exec_select_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_select_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
