# Empty compiler generated dependencies file for exec_select_test.
# This may be replaced when dependencies are built.
