file(REMOVE_RECURSE
  "CMakeFiles/replay_log_test.dir/replay_log_test.cc.o"
  "CMakeFiles/replay_log_test.dir/replay_log_test.cc.o.d"
  "replay_log_test"
  "replay_log_test.pdb"
  "replay_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
