file(REMOVE_RECURSE
  "CMakeFiles/exec_dml_test.dir/exec_dml_test.cc.o"
  "CMakeFiles/exec_dml_test.dir/exec_dml_test.cc.o.d"
  "exec_dml_test"
  "exec_dml_test.pdb"
  "exec_dml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_dml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
