# Empty compiler generated dependencies file for ldv_audit_replay_test.
# This may be replaced when dependencies are built.
