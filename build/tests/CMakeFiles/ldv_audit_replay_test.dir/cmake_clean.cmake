file(REMOVE_RECURSE
  "CMakeFiles/ldv_audit_replay_test.dir/ldv_audit_replay_test.cc.o"
  "CMakeFiles/ldv_audit_replay_test.dir/ldv_audit_replay_test.cc.o.d"
  "ldv_audit_replay_test"
  "ldv_audit_replay_test.pdb"
  "ldv_audit_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldv_audit_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
