file(REMOVE_RECURSE
  "CMakeFiles/ldv_storage.dir/storage/database.cc.o"
  "CMakeFiles/ldv_storage.dir/storage/database.cc.o.d"
  "CMakeFiles/ldv_storage.dir/storage/persistence.cc.o"
  "CMakeFiles/ldv_storage.dir/storage/persistence.cc.o.d"
  "CMakeFiles/ldv_storage.dir/storage/schema.cc.o"
  "CMakeFiles/ldv_storage.dir/storage/schema.cc.o.d"
  "CMakeFiles/ldv_storage.dir/storage/table.cc.o"
  "CMakeFiles/ldv_storage.dir/storage/table.cc.o.d"
  "CMakeFiles/ldv_storage.dir/storage/value.cc.o"
  "CMakeFiles/ldv_storage.dir/storage/value.cc.o.d"
  "libldv_storage.a"
  "libldv_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldv_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
