file(REMOVE_RECURSE
  "libldv_storage.a"
)
