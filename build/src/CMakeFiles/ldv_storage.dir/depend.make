# Empty dependencies file for ldv_storage.
# This may be replaced when dependencies are built.
