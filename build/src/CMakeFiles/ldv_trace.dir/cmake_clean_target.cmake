file(REMOVE_RECURSE
  "libldv_trace.a"
)
