file(REMOVE_RECURSE
  "CMakeFiles/ldv_trace.dir/trace/graph.cc.o"
  "CMakeFiles/ldv_trace.dir/trace/graph.cc.o.d"
  "CMakeFiles/ldv_trace.dir/trace/inference.cc.o"
  "CMakeFiles/ldv_trace.dir/trace/inference.cc.o.d"
  "CMakeFiles/ldv_trace.dir/trace/model.cc.o"
  "CMakeFiles/ldv_trace.dir/trace/model.cc.o.d"
  "CMakeFiles/ldv_trace.dir/trace/prov_export.cc.o"
  "CMakeFiles/ldv_trace.dir/trace/prov_export.cc.o.d"
  "CMakeFiles/ldv_trace.dir/trace/serialize.cc.o"
  "CMakeFiles/ldv_trace.dir/trace/serialize.cc.o.d"
  "libldv_trace.a"
  "libldv_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldv_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
