
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/graph.cc" "src/CMakeFiles/ldv_trace.dir/trace/graph.cc.o" "gcc" "src/CMakeFiles/ldv_trace.dir/trace/graph.cc.o.d"
  "/root/repo/src/trace/inference.cc" "src/CMakeFiles/ldv_trace.dir/trace/inference.cc.o" "gcc" "src/CMakeFiles/ldv_trace.dir/trace/inference.cc.o.d"
  "/root/repo/src/trace/model.cc" "src/CMakeFiles/ldv_trace.dir/trace/model.cc.o" "gcc" "src/CMakeFiles/ldv_trace.dir/trace/model.cc.o.d"
  "/root/repo/src/trace/prov_export.cc" "src/CMakeFiles/ldv_trace.dir/trace/prov_export.cc.o" "gcc" "src/CMakeFiles/ldv_trace.dir/trace/prov_export.cc.o.d"
  "/root/repo/src/trace/serialize.cc" "src/CMakeFiles/ldv_trace.dir/trace/serialize.cc.o" "gcc" "src/CMakeFiles/ldv_trace.dir/trace/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ldv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
