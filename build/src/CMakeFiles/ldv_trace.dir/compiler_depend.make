# Empty compiler generated dependencies file for ldv_trace.
# This may be replaced when dependencies are built.
