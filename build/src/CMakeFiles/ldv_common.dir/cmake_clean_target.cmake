file(REMOVE_RECURSE
  "libldv_common.a"
)
