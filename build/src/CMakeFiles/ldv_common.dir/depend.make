# Empty dependencies file for ldv_common.
# This may be replaced when dependencies are built.
