file(REMOVE_RECURSE
  "CMakeFiles/ldv_common.dir/common/clock.cc.o"
  "CMakeFiles/ldv_common.dir/common/clock.cc.o.d"
  "CMakeFiles/ldv_common.dir/common/fault.cc.o"
  "CMakeFiles/ldv_common.dir/common/fault.cc.o.d"
  "CMakeFiles/ldv_common.dir/common/json.cc.o"
  "CMakeFiles/ldv_common.dir/common/json.cc.o.d"
  "CMakeFiles/ldv_common.dir/common/logging.cc.o"
  "CMakeFiles/ldv_common.dir/common/logging.cc.o.d"
  "CMakeFiles/ldv_common.dir/common/status.cc.o"
  "CMakeFiles/ldv_common.dir/common/status.cc.o.d"
  "libldv_common.a"
  "libldv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
