file(REMOVE_RECURSE
  "libldv_util.a"
)
