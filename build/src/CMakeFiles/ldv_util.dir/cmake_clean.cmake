file(REMOVE_RECURSE
  "CMakeFiles/ldv_util.dir/util/crc32.cc.o"
  "CMakeFiles/ldv_util.dir/util/crc32.cc.o.d"
  "CMakeFiles/ldv_util.dir/util/csv.cc.o"
  "CMakeFiles/ldv_util.dir/util/csv.cc.o.d"
  "CMakeFiles/ldv_util.dir/util/fsutil.cc.o"
  "CMakeFiles/ldv_util.dir/util/fsutil.cc.o.d"
  "CMakeFiles/ldv_util.dir/util/rng.cc.o"
  "CMakeFiles/ldv_util.dir/util/rng.cc.o.d"
  "CMakeFiles/ldv_util.dir/util/serde.cc.o"
  "CMakeFiles/ldv_util.dir/util/serde.cc.o.d"
  "CMakeFiles/ldv_util.dir/util/strings.cc.o"
  "CMakeFiles/ldv_util.dir/util/strings.cc.o.d"
  "libldv_util.a"
  "libldv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
