
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/crc32.cc" "src/CMakeFiles/ldv_util.dir/util/crc32.cc.o" "gcc" "src/CMakeFiles/ldv_util.dir/util/crc32.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/ldv_util.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/ldv_util.dir/util/csv.cc.o.d"
  "/root/repo/src/util/fsutil.cc" "src/CMakeFiles/ldv_util.dir/util/fsutil.cc.o" "gcc" "src/CMakeFiles/ldv_util.dir/util/fsutil.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/ldv_util.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/ldv_util.dir/util/rng.cc.o.d"
  "/root/repo/src/util/serde.cc" "src/CMakeFiles/ldv_util.dir/util/serde.cc.o" "gcc" "src/CMakeFiles/ldv_util.dir/util/serde.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/CMakeFiles/ldv_util.dir/util/strings.cc.o" "gcc" "src/CMakeFiles/ldv_util.dir/util/strings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ldv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
