# Empty compiler generated dependencies file for ldv_util.
# This may be replaced when dependencies are built.
