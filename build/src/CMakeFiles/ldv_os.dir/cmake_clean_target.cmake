file(REMOVE_RECURSE
  "libldv_os.a"
)
