# Empty dependencies file for ldv_os.
# This may be replaced when dependencies are built.
