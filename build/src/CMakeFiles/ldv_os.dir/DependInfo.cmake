
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/ptrace_tracer.cc" "src/CMakeFiles/ldv_os.dir/os/ptrace_tracer.cc.o" "gcc" "src/CMakeFiles/ldv_os.dir/os/ptrace_tracer.cc.o.d"
  "/root/repo/src/os/sim_process.cc" "src/CMakeFiles/ldv_os.dir/os/sim_process.cc.o" "gcc" "src/CMakeFiles/ldv_os.dir/os/sim_process.cc.o.d"
  "/root/repo/src/os/vfs.cc" "src/CMakeFiles/ldv_os.dir/os/vfs.cc.o" "gcc" "src/CMakeFiles/ldv_os.dir/os/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ldv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
