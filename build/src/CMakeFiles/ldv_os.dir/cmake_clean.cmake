file(REMOVE_RECURSE
  "CMakeFiles/ldv_os.dir/os/ptrace_tracer.cc.o"
  "CMakeFiles/ldv_os.dir/os/ptrace_tracer.cc.o.d"
  "CMakeFiles/ldv_os.dir/os/sim_process.cc.o"
  "CMakeFiles/ldv_os.dir/os/sim_process.cc.o.d"
  "CMakeFiles/ldv_os.dir/os/vfs.cc.o"
  "CMakeFiles/ldv_os.dir/os/vfs.cc.o.d"
  "libldv_os.a"
  "libldv_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldv_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
