file(REMOVE_RECURSE
  "libldv_exec.a"
)
