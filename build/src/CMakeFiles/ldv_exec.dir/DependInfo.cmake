
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/ldv_exec.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/ldv_exec.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/expression.cc" "src/CMakeFiles/ldv_exec.dir/exec/expression.cc.o" "gcc" "src/CMakeFiles/ldv_exec.dir/exec/expression.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/CMakeFiles/ldv_exec.dir/exec/operators.cc.o" "gcc" "src/CMakeFiles/ldv_exec.dir/exec/operators.cc.o.d"
  "/root/repo/src/exec/planner.cc" "src/CMakeFiles/ldv_exec.dir/exec/planner.cc.o" "gcc" "src/CMakeFiles/ldv_exec.dir/exec/planner.cc.o.d"
  "/root/repo/src/exec/reenactment.cc" "src/CMakeFiles/ldv_exec.dir/exec/reenactment.cc.o" "gcc" "src/CMakeFiles/ldv_exec.dir/exec/reenactment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ldv_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
