# Empty compiler generated dependencies file for ldv_exec.
# This may be replaced when dependencies are built.
