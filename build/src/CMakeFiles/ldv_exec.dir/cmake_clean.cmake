file(REMOVE_RECURSE
  "CMakeFiles/ldv_exec.dir/exec/executor.cc.o"
  "CMakeFiles/ldv_exec.dir/exec/executor.cc.o.d"
  "CMakeFiles/ldv_exec.dir/exec/expression.cc.o"
  "CMakeFiles/ldv_exec.dir/exec/expression.cc.o.d"
  "CMakeFiles/ldv_exec.dir/exec/operators.cc.o"
  "CMakeFiles/ldv_exec.dir/exec/operators.cc.o.d"
  "CMakeFiles/ldv_exec.dir/exec/planner.cc.o"
  "CMakeFiles/ldv_exec.dir/exec/planner.cc.o.d"
  "CMakeFiles/ldv_exec.dir/exec/reenactment.cc.o"
  "CMakeFiles/ldv_exec.dir/exec/reenactment.cc.o.d"
  "libldv_exec.a"
  "libldv_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldv_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
