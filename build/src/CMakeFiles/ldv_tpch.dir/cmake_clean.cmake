file(REMOVE_RECURSE
  "CMakeFiles/ldv_tpch.dir/tpch/app.cc.o"
  "CMakeFiles/ldv_tpch.dir/tpch/app.cc.o.d"
  "CMakeFiles/ldv_tpch.dir/tpch/generator.cc.o"
  "CMakeFiles/ldv_tpch.dir/tpch/generator.cc.o.d"
  "CMakeFiles/ldv_tpch.dir/tpch/queries.cc.o"
  "CMakeFiles/ldv_tpch.dir/tpch/queries.cc.o.d"
  "libldv_tpch.a"
  "libldv_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldv_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
