file(REMOVE_RECURSE
  "libldv_tpch.a"
)
