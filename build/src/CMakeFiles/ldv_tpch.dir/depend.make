# Empty dependencies file for ldv_tpch.
# This may be replaced when dependencies are built.
