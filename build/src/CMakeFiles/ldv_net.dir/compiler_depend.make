# Empty compiler generated dependencies file for ldv_net.
# This may be replaced when dependencies are built.
