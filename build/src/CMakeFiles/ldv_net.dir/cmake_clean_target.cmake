file(REMOVE_RECURSE
  "libldv_net.a"
)
