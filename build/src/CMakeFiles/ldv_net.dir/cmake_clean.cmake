file(REMOVE_RECURSE
  "CMakeFiles/ldv_net.dir/net/db_client.cc.o"
  "CMakeFiles/ldv_net.dir/net/db_client.cc.o.d"
  "CMakeFiles/ldv_net.dir/net/db_server.cc.o"
  "CMakeFiles/ldv_net.dir/net/db_server.cc.o.d"
  "CMakeFiles/ldv_net.dir/net/protocol.cc.o"
  "CMakeFiles/ldv_net.dir/net/protocol.cc.o.d"
  "CMakeFiles/ldv_net.dir/net/retrying_db_client.cc.o"
  "CMakeFiles/ldv_net.dir/net/retrying_db_client.cc.o.d"
  "libldv_net.a"
  "libldv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
