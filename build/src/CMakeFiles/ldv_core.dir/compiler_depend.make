# Empty compiler generated dependencies file for ldv_core.
# This may be replaced when dependencies are built.
