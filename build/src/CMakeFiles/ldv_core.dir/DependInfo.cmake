
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ldv/auditing_db_client.cc" "src/CMakeFiles/ldv_core.dir/ldv/auditing_db_client.cc.o" "gcc" "src/CMakeFiles/ldv_core.dir/ldv/auditing_db_client.cc.o.d"
  "/root/repo/src/ldv/auditor.cc" "src/CMakeFiles/ldv_core.dir/ldv/auditor.cc.o" "gcc" "src/CMakeFiles/ldv_core.dir/ldv/auditor.cc.o.d"
  "/root/repo/src/ldv/manifest.cc" "src/CMakeFiles/ldv_core.dir/ldv/manifest.cc.o" "gcc" "src/CMakeFiles/ldv_core.dir/ldv/manifest.cc.o.d"
  "/root/repo/src/ldv/packager.cc" "src/CMakeFiles/ldv_core.dir/ldv/packager.cc.o" "gcc" "src/CMakeFiles/ldv_core.dir/ldv/packager.cc.o.d"
  "/root/repo/src/ldv/replay_db_client.cc" "src/CMakeFiles/ldv_core.dir/ldv/replay_db_client.cc.o" "gcc" "src/CMakeFiles/ldv_core.dir/ldv/replay_db_client.cc.o.d"
  "/root/repo/src/ldv/replayer.cc" "src/CMakeFiles/ldv_core.dir/ldv/replayer.cc.o" "gcc" "src/CMakeFiles/ldv_core.dir/ldv/replayer.cc.o.d"
  "/root/repo/src/ldv/vm_image_model.cc" "src/CMakeFiles/ldv_core.dir/ldv/vm_image_model.cc.o" "gcc" "src/CMakeFiles/ldv_core.dir/ldv/vm_image_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ldv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
