file(REMOVE_RECURSE
  "libldv_core.a"
)
