file(REMOVE_RECURSE
  "CMakeFiles/ldv_core.dir/ldv/auditing_db_client.cc.o"
  "CMakeFiles/ldv_core.dir/ldv/auditing_db_client.cc.o.d"
  "CMakeFiles/ldv_core.dir/ldv/auditor.cc.o"
  "CMakeFiles/ldv_core.dir/ldv/auditor.cc.o.d"
  "CMakeFiles/ldv_core.dir/ldv/manifest.cc.o"
  "CMakeFiles/ldv_core.dir/ldv/manifest.cc.o.d"
  "CMakeFiles/ldv_core.dir/ldv/packager.cc.o"
  "CMakeFiles/ldv_core.dir/ldv/packager.cc.o.d"
  "CMakeFiles/ldv_core.dir/ldv/replay_db_client.cc.o"
  "CMakeFiles/ldv_core.dir/ldv/replay_db_client.cc.o.d"
  "CMakeFiles/ldv_core.dir/ldv/replayer.cc.o"
  "CMakeFiles/ldv_core.dir/ldv/replayer.cc.o.d"
  "CMakeFiles/ldv_core.dir/ldv/vm_image_model.cc.o"
  "CMakeFiles/ldv_core.dir/ldv/vm_image_model.cc.o.d"
  "libldv_core.a"
  "libldv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
