file(REMOVE_RECURSE
  "libldv_sql.a"
)
