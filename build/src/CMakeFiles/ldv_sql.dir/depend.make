# Empty dependencies file for ldv_sql.
# This may be replaced when dependencies are built.
