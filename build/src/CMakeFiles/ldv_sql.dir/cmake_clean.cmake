file(REMOVE_RECURSE
  "CMakeFiles/ldv_sql.dir/sql/ast.cc.o"
  "CMakeFiles/ldv_sql.dir/sql/ast.cc.o.d"
  "CMakeFiles/ldv_sql.dir/sql/lexer.cc.o"
  "CMakeFiles/ldv_sql.dir/sql/lexer.cc.o.d"
  "CMakeFiles/ldv_sql.dir/sql/parser.cc.o"
  "CMakeFiles/ldv_sql.dir/sql/parser.cc.o.d"
  "CMakeFiles/ldv_sql.dir/sql/token.cc.o"
  "CMakeFiles/ldv_sql.dir/sql/token.cc.o.d"
  "libldv_sql.a"
  "libldv_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldv_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
