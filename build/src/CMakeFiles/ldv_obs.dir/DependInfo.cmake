
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/metrics.cc" "src/CMakeFiles/ldv_obs.dir/obs/metrics.cc.o" "gcc" "src/CMakeFiles/ldv_obs.dir/obs/metrics.cc.o.d"
  "/root/repo/src/obs/profile.cc" "src/CMakeFiles/ldv_obs.dir/obs/profile.cc.o" "gcc" "src/CMakeFiles/ldv_obs.dir/obs/profile.cc.o.d"
  "/root/repo/src/obs/span.cc" "src/CMakeFiles/ldv_obs.dir/obs/span.cc.o" "gcc" "src/CMakeFiles/ldv_obs.dir/obs/span.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ldv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ldv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
