# Empty dependencies file for ldv_obs.
# This may be replaced when dependencies are built.
