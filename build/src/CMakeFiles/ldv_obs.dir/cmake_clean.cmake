file(REMOVE_RECURSE
  "CMakeFiles/ldv_obs.dir/obs/metrics.cc.o"
  "CMakeFiles/ldv_obs.dir/obs/metrics.cc.o.d"
  "CMakeFiles/ldv_obs.dir/obs/profile.cc.o"
  "CMakeFiles/ldv_obs.dir/obs/profile.cc.o.d"
  "CMakeFiles/ldv_obs.dir/obs/span.cc.o"
  "CMakeFiles/ldv_obs.dir/obs/span.cc.o.d"
  "libldv_obs.a"
  "libldv_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldv_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
