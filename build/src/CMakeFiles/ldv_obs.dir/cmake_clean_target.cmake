file(REMOVE_RECURSE
  "libldv_obs.a"
)
