# Empty dependencies file for tpch_repro.
# This may be replaced when dependencies are built.
