file(REMOVE_RECURSE
  "CMakeFiles/tpch_repro.dir/tpch_repro.cpp.o"
  "CMakeFiles/tpch_repro.dir/tpch_repro.cpp.o.d"
  "tpch_repro"
  "tpch_repro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_repro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
