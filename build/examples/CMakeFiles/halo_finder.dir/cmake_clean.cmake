file(REMOVE_RECURSE
  "CMakeFiles/halo_finder.dir/halo_finder.cpp.o"
  "CMakeFiles/halo_finder.dir/halo_finder.cpp.o.d"
  "halo_finder"
  "halo_finder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_finder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
