# Empty compiler generated dependencies file for halo_finder.
# This may be replaced when dependencies are built.
