# Empty dependencies file for provenance_queries.
# This may be replaced when dependencies are built.
