# Empty dependencies file for ptrace_demo.
# This may be replaced when dependencies are built.
