file(REMOVE_RECURSE
  "CMakeFiles/ptrace_demo.dir/ptrace_demo.cpp.o"
  "CMakeFiles/ptrace_demo.dir/ptrace_demo.cpp.o.d"
  "ptrace_demo"
  "ptrace_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptrace_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
