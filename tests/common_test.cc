#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/json.h"
#include "common/result.h"
#include "common/status.h"

namespace ldv {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::IOError("disk full").WithContext("writing manifest");
  EXPECT_EQ(s.message(), "writing manifest: disk full");
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_TRUE(Status::Ok().WithContext("ignored").ok());
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int code = 0; code <= static_cast<int>(StatusCode::kReplayMismatch);
       ++code) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(code)), "Unknown");
  }
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  LDV_ASSIGN_OR_RETURN(int half, Half(x));
  LDV_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = Half(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  Result<int> bad = Half(3);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.ValueOr(-1), -1);
  EXPECT_EQ(ok.ValueOr(-1), 5);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*QuarterViaMacro(8), 2);
  EXPECT_FALSE(QuarterViaMacro(6).ok());  // 6/2=3 is odd
  EXPECT_FALSE(QuarterViaMacro(5).ok());
}

TEST(LogicalClockTest, MonotoneTicks) {
  LogicalClock clock;
  EXPECT_EQ(clock.Now(), 0);
  EXPECT_EQ(clock.Tick(), 1);
  EXPECT_EQ(clock.Tick(), 2);
  EXPECT_EQ(clock.Now(), 2);
  clock.Reset(100);
  EXPECT_EQ(clock.Tick(), 101);
}

TEST(JsonTest, BuildDumpParseRoundTrip) {
  Json obj = Json::MakeObject();
  obj.Set("name", Json::MakeString("ldv"));
  obj.Set("size", Json::MakeInt(42));
  obj.Set("ratio", Json::MakeDouble(0.5));
  obj.Set("flag", Json::MakeBool(true));
  obj.Set("nothing", Json::MakeNull());
  Json arr = Json::MakeArray();
  arr.Append(Json::MakeInt(1));
  arr.Append(Json::MakeString("two"));
  obj.Set("list", std::move(arr));

  std::string text = obj.Dump(true);
  Result<Json> parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetString("name", ""), "ldv");
  EXPECT_EQ(parsed->GetInt("size", 0), 42);
  EXPECT_DOUBLE_EQ(parsed->GetDouble("ratio", 0), 0.5);
  EXPECT_TRUE(parsed->GetBool("flag", false));
  EXPECT_TRUE(parsed->Find("nothing")->is_null());
  ASSERT_TRUE(parsed->Find("list")->is_array());
  EXPECT_EQ(parsed->Find("list")->AsArray()[0].AsInt(), 1);
  EXPECT_EQ(parsed->Find("list")->AsArray()[1].AsString(), "two");
}

TEST(JsonTest, EscapesSpecialCharacters) {
  Json s = Json::MakeString("a\"b\\c\nd\te");
  std::string text = s.Dump();
  Result<Json> parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "a\"b\\c\nd\te");
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,").ok());
  EXPECT_FALSE(Json::Parse("nope").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
}

TEST(JsonTest, ParsesNestedDocument) {
  auto parsed = Json::Parse(R"({"a": {"b": [1, 2.5, {"c": null}]}, "d": -7})");
  ASSERT_TRUE(parsed.ok());
  const Json* a = parsed->Find("a");
  ASSERT_NE(a, nullptr);
  const Json* b = a->Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(b->AsArray()[1].AsDouble(), 2.5);
  EXPECT_EQ(parsed->GetInt("d", 0), -7);
}

TEST(JsonTest, UnicodeEscapeParses) {
  auto parsed = Json::Parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "A\xc3\xa9");
}

}  // namespace
}  // namespace ldv
