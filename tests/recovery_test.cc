// WAL + crash recovery: commit groups reach the log, redo rebuilds
// state deterministically, torn tails truncate, mid-log corruption fails
// loudly, checkpoints retire segments, and aborted transactions never
// appear in the log.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "exec/wal_redo.h"
#include "net/db_client.h"
#include "storage/persistence.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "util/fsutil.h"

namespace ldv::storage {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("recovery_test");
    ASSERT_TRUE(dir.ok());
    root_ = *dir;
    data_dir_ = JoinPath(root_, "data");
    wal_dir_ = JoinPath(root_, "wal");
  }

  void TearDown() override { (void)RemoveAll(root_); }

  // A fresh engine over `db` with the WAL attached (recovering first).
  std::unique_ptr<net::EngineHandle> OpenEngine(Database* db,
                                                int64_t checkpoint_every = 0) {
    RecoveryStats stats;
    Status recovered =
        exec::RecoverWithWal(db, data_dir_, wal_dir_, &stats);
    EXPECT_TRUE(recovered.ok()) << recovered.ToString();
    auto wal = Wal::Open(wal_dir_, WalOptions{}, stats.next_lsn);
    EXPECT_TRUE(wal.ok()) << wal.status().ToString();
    auto engine = std::make_unique<net::EngineHandle>(db);
    net::EngineDurabilityOptions durability;
    durability.data_dir = data_dir_;
    durability.checkpoint_every = checkpoint_every;
    engine->AttachWal(std::move(*wal), durability);
    return engine;
  }

  static Status Run(net::EngineHandle* engine, const std::string& sql) {
    net::DbRequest request;
    request.sql = sql;
    return engine->Execute(request).status();
  }

  static std::string Scan(Database* db, const std::string& table) {
    exec::Executor executor(db);
    auto rows = executor.Execute(
        "SELECT id, v FROM " + table + " ORDER BY id, v", {});
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    std::string out;
    if (!rows.ok()) return out;
    for (const auto& row : rows->rows) {
      out += std::to_string(row[0].AsInt()) + "=" +
             std::to_string(row[1].AsInt()) + ";";
    }
    return out;
  }

  std::string root_, data_dir_, wal_dir_;
};

TEST_F(RecoveryTest, CommittedStatementsSurviveWithoutSnapshot) {
  {
    Database db;
    auto engine = OpenEngine(&db);
    ASSERT_TRUE(Run(engine.get(), "CREATE TABLE t (id INT, v INT)").ok());
    ASSERT_TRUE(Run(engine.get(), "INSERT INTO t VALUES (1, 10)").ok());
    ASSERT_TRUE(Run(engine.get(), "UPDATE t SET v = 11 WHERE id = 1").ok());
    // No snapshot, no clean shutdown: everything must come from the WAL.
  }
  Database db;
  RecoveryStats stats;
  ASSERT_TRUE(exec::RecoverWithWal(&db, data_dir_, wal_dir_, &stats).ok());
  EXPECT_FALSE(stats.snapshot_loaded);
  EXPECT_EQ(stats.txns_applied, 3);
  EXPECT_EQ(Scan(&db, "t"), "1=11;");
}

TEST_F(RecoveryTest, ExplicitTransactionIsOneAtomicGroup) {
  {
    Database db;
    auto engine = OpenEngine(&db);
    ASSERT_TRUE(Run(engine.get(), "CREATE TABLE t (id INT, v INT)").ok());
    ASSERT_TRUE(Run(engine.get(), "BEGIN").ok());
    ASSERT_TRUE(Run(engine.get(), "INSERT INTO t VALUES (1, 10)").ok());
    ASSERT_TRUE(Run(engine.get(), "INSERT INTO t VALUES (2, 20)").ok());
    ASSERT_TRUE(Run(engine.get(), "COMMIT").ok());
  }
  Database db;
  RecoveryStats stats;
  ASSERT_TRUE(exec::RecoverWithWal(&db, data_dir_, wal_dir_, &stats).ok());
  // CREATE + the two-statement transaction = 2 groups.
  EXPECT_EQ(stats.txns_applied, 2);
  EXPECT_EQ(stats.ops_applied, 3);
  EXPECT_EQ(Scan(&db, "t"), "1=10;2=20;");
}

TEST_F(RecoveryTest, AbortedTransactionsNeverReachTheLog) {
  {
    Database db;
    auto engine = OpenEngine(&db);
    ASSERT_TRUE(Run(engine.get(), "CREATE TABLE t (id INT, v INT)").ok());
    ASSERT_TRUE(Run(engine.get(), "BEGIN").ok());
    ASSERT_TRUE(Run(engine.get(), "INSERT INTO t VALUES (99, 99)").ok());
    ASSERT_TRUE(Run(engine.get(), "ROLLBACK").ok());
    ASSERT_TRUE(Run(engine.get(), "INSERT INTO t VALUES (1, 10)").ok());
  }
  // The log contains only CREATE and the committed INSERT.
  auto segments = ListWalSegments(wal_dir_);
  ASSERT_TRUE(segments.ok());
  int64_t ops = 0;
  for (const auto& name : *segments) {
    auto scan = ScanWalSegment(JoinPath(wal_dir_, name));
    ASSERT_TRUE(scan.ok());
    EXPECT_TRUE(scan->damage.empty());
    for (const auto& record : scan->records) {
      if (record.kind == WalRecordKind::kOp) {
        ++ops;
        EXPECT_EQ(record.op.sql.find("99"), std::string::npos)
            << "aborted insert leaked into the WAL: " << record.op.sql;
      }
    }
  }
  EXPECT_EQ(ops, 2);

  Database db;
  RecoveryStats stats;
  ASSERT_TRUE(exec::RecoverWithWal(&db, data_dir_, wal_dir_, &stats).ok());
  EXPECT_EQ(Scan(&db, "t"), "1=10;");
}

TEST_F(RecoveryTest, RedoReproducesRowidsAndVersions) {
  TupleVid live_vid;
  {
    Database db;
    auto engine = OpenEngine(&db);
    ASSERT_TRUE(Run(engine.get(), "CREATE TABLE t (id INT, v INT)").ok());
    // A rolled-back transaction in the middle must not shift anything.
    ASSERT_TRUE(Run(engine.get(), "BEGIN").ok());
    ASSERT_TRUE(Run(engine.get(), "INSERT INTO t VALUES (7, 70)").ok());
    ASSERT_TRUE(Run(engine.get(), "ROLLBACK").ok());
    ASSERT_TRUE(Run(engine.get(), "INSERT INTO t VALUES (1, 10)").ok());
    ASSERT_TRUE(Run(engine.get(), "UPDATE t SET v = 11 WHERE id = 1").ok());
    const Table* table = db.FindTable("t");
    ASSERT_NE(table, nullptr);
    const RowVersion* row = table->Find(1);
    ASSERT_NE(row, nullptr);
    live_vid = TupleVid{table->id(), row->rowid, row->version};
  }
  Database db;
  RecoveryStats stats;
  ASSERT_TRUE(exec::RecoverWithWal(&db, data_dir_, wal_dir_, &stats).ok());
  const Table* table = db.FindTable("t");
  ASSERT_NE(table, nullptr);
  const RowVersion* row = table->Find(1);
  ASSERT_NE(row, nullptr);
  // Same rowid and same version stamp: provenance identifiers stay valid
  // across a crash.
  EXPECT_EQ(row->rowid, live_vid.rowid);
  EXPECT_EQ(row->version, live_vid.version);
}

TEST_F(RecoveryTest, TornTailIsTruncatedNotFatal) {
  {
    Database db;
    auto engine = OpenEngine(&db);
    ASSERT_TRUE(Run(engine.get(), "CREATE TABLE t (id INT, v INT)").ok());
    ASSERT_TRUE(Run(engine.get(), "INSERT INTO t VALUES (1, 10)").ok());
  }
  auto segments = ListWalSegments(wal_dir_);
  ASSERT_TRUE(segments.ok());
  ASSERT_FALSE(segments->empty());
  const std::string last = JoinPath(wal_dir_, segments->back());

  // Tear the final commit group: append garbage, then chop into a frame.
  auto bytes = ReadFileToString(last);
  ASSERT_TRUE(bytes.ok());
  std::string torn = bytes->substr(0, bytes->size() - 7);
  ASSERT_TRUE(WriteStringToFile(last, torn).ok());

  Database db;
  RecoveryStats stats;
  ASSERT_TRUE(exec::RecoverWithWal(&db, data_dir_, wal_dir_, &stats).ok());
  EXPECT_TRUE(stats.truncated_torn_tail);
  EXPECT_FALSE(stats.torn_detail.empty());
  // The torn group (the INSERT) is gone; the earlier group survived.
  EXPECT_EQ(Scan(&db, "t"), "");

  // Idempotence: the truncation was durable, a second recovery is clean.
  Database db2;
  RecoveryStats stats2;
  ASSERT_TRUE(exec::RecoverWithWal(&db2, data_dir_, wal_dir_, &stats2).ok());
  EXPECT_FALSE(stats2.truncated_torn_tail);
  EXPECT_EQ(Scan(&db2, "t"), "");
}

TEST_F(RecoveryTest, CorruptionBeforeLastSegmentFailsNamingFileAndOffset) {
  {
    Database db;
    auto engine = OpenEngine(&db);
    ASSERT_TRUE(Run(engine.get(), "CREATE TABLE t (id INT, v INT)").ok());
    ASSERT_TRUE(Run(engine.get(), "INSERT INTO t VALUES (1, 10)").ok());
    // Rotate so the corrupt segment is not the last one.
    ASSERT_TRUE(engine->wal()->StartNewSegment().ok());
    ASSERT_TRUE(Run(engine.get(), "INSERT INTO t VALUES (2, 20)").ok());
  }
  auto segments = ListWalSegments(wal_dir_);
  ASSERT_TRUE(segments.ok());
  ASSERT_GE(segments->size(), 2u);
  const std::string first = JoinPath(wal_dir_, segments->front());
  auto bytes = ReadFileToString(first);
  ASSERT_TRUE(bytes.ok());
  std::string damaged = *bytes;
  damaged[damaged.size() / 2] ^= 0x5A;  // flip bits mid-record
  ASSERT_TRUE(WriteStringToFile(first, damaged).ok());

  Database db;
  RecoveryStats stats;
  Status recovered = exec::RecoverWithWal(&db, data_dir_, wal_dir_, &stats);
  ASSERT_FALSE(recovered.ok());
  // The error pinpoints the damaged file; the scan detail carries the
  // offset of the first bad byte.
  EXPECT_NE(recovered.message().find(segments->front()), std::string::npos)
      << recovered.ToString();
  EXPECT_NE(recovered.message().find("offset"), std::string::npos)
      << recovered.ToString();
}

TEST_F(RecoveryTest, CheckpointRetiresSegmentsAndRecoveryUsesSnapshot) {
  {
    Database db;
    auto engine = OpenEngine(&db, /*checkpoint_every=*/2);
    ASSERT_TRUE(Run(engine.get(), "CREATE TABLE t (id INT, v INT)").ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(Run(engine.get(),
                      "INSERT INTO t VALUES (" + std::to_string(i) + ", " +
                          std::to_string(i * 10) + ")")
                      .ok());
    }
    // 7 commits at checkpoint_every=2: at least 3 checkpoints happened and
    // old segments are gone.
    auto segments = ListWalSegments(wal_dir_);
    ASSERT_TRUE(segments.ok());
    EXPECT_EQ(segments->size(), 1u);
    EXPECT_TRUE(FileExists(JoinPath(data_dir_, "catalog.json")));
  }
  Database db;
  RecoveryStats stats;
  ASSERT_TRUE(exec::RecoverWithWal(&db, data_dir_, wal_dir_, &stats).ok());
  EXPECT_TRUE(stats.snapshot_loaded);
  // Everything after the last checkpoint came from the WAL tail; ops the
  // snapshot already covered were skipped, none lost.
  EXPECT_EQ(Scan(&db, "t"), "0=0;1=10;2=20;3=30;4=40;5=50;");

  // A fresh engine keeps committing on the recovered state.
  {
    Database live;
    auto engine = OpenEngine(&live);
    ASSERT_TRUE(Run(engine.get(), "INSERT INTO t VALUES (6, 60)").ok());
  }
  Database db2;
  RecoveryStats stats2;
  ASSERT_TRUE(exec::RecoverWithWal(&db2, data_dir_, wal_dir_, &stats2).ok());
  EXPECT_EQ(Scan(&db2, "t"), "0=0;1=10;2=20;3=30;4=40;5=50;6=60;");
}

TEST_F(RecoveryTest, JunkFilesInWalDirAreSkippedLoudly) {
  {
    Database db;
    auto engine = OpenEngine(&db);
    ASSERT_TRUE(Run(engine.get(), "CREATE TABLE t (id INT, v INT)").ok());
    ASSERT_TRUE(Run(engine.get(), "INSERT INTO t VALUES (1, 10)").ok());
  }
  // Strays that land in real WAL directories: editor droppings, tempfiles,
  // an almost-right name. None of them parse as a segment; listing warns
  // and skips them instead of tripping recovery.
  ASSERT_TRUE(WriteStringToFile(JoinPath(wal_dir_, "notes.txt"), "junk").ok());
  ASSERT_TRUE(
      WriteStringToFile(JoinPath(wal_dir_, "wal-000000zz.log"), "junk").ok());
  ASSERT_TRUE(
      WriteStringToFile(JoinPath(wal_dir_, "wal-00000001.log.bak"), "junk")
          .ok());
  auto segments = ListWalSegments(wal_dir_);
  ASSERT_TRUE(segments.ok());
  for (const auto& name : *segments) {
    EXPECT_GE(WalSegmentIndex(name), 0) << "junk listed as segment: " << name;
  }
  Database db;
  RecoveryStats stats;
  ASSERT_TRUE(exec::RecoverWithWal(&db, data_dir_, wal_dir_, &stats).ok());
  EXPECT_EQ(Scan(&db, "t"), "1=10;");
}

TEST_F(RecoveryTest, SyncModeNoneCleanShutdownRecoversEverything) {
  {
    Database db;
    RecoveryStats stats;
    ASSERT_TRUE(exec::RecoverWithWal(&db, data_dir_, wal_dir_, &stats).ok());
    WalOptions options;
    options.sync_mode = WalSyncMode::kNone;
    auto wal = Wal::Open(wal_dir_, options, stats.next_lsn);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    net::EngineHandle engine(&db);
    net::EngineDurabilityOptions durability;
    durability.data_dir = data_dir_;
    engine.AttachWal(std::move(*wal), durability);
    ASSERT_TRUE(Run(&engine, "CREATE TABLE t (id INT, v INT)").ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(Run(&engine, "INSERT INTO t VALUES (" + std::to_string(i) +
                                   ", " + std::to_string(i * 10) + ")")
                      .ok());
    }
    ASSERT_TRUE(engine.FlushWal().ok());
  }
  // sync-mode=none trades power-failure durability for speed, but a clean
  // shutdown must still lose nothing: every commit was written, just not
  // fsynced.
  Database db;
  RecoveryStats stats;
  ASSERT_TRUE(exec::RecoverWithWal(&db, data_dir_, wal_dir_, &stats).ok());
  EXPECT_EQ(stats.txns_applied, 21);
  std::string expect;
  for (int i = 0; i < 20; ++i) {
    expect += std::to_string(i) + "=" + std::to_string(i * 10) + ";";
  }
  EXPECT_EQ(Scan(&db, "t"), expect);
}

TEST_F(RecoveryTest, SyncModeParses) {
  EXPECT_TRUE(ParseWalSyncMode("fsync").ok());
  EXPECT_TRUE(ParseWalSyncMode("fdatasync").ok());
  EXPECT_TRUE(ParseWalSyncMode("none").ok());
  EXPECT_FALSE(ParseWalSyncMode("sometimes").ok());
}

TEST_F(RecoveryTest, WalRecordRoundTrip) {
  WalRecord record;
  record.lsn = 42;
  record.kind = WalRecordKind::kOp;
  record.txn_id = 7;
  record.op.stmt_seq_before = 13;
  record.op.sql = "INSERT INTO t VALUES (1, 'x''y')";
  std::string frame = EncodeWalRecord(record);
  // length + crc header plus the payload (lsn, kind, varints, sql).
  EXPECT_GT(frame.size(), 8u + 8u + 1u + record.op.sql.size());

  {
    auto wal = Wal::Open(JoinPath(root_, "rt"), WalOptions{}, 1);
    ASSERT_TRUE(wal.ok());
    auto lsn = (*wal)->AppendCommit(
        7, {WalOp{13, record.op.sql}, WalOp{14, "DELETE FROM t"}});
    ASSERT_TRUE(lsn.ok());
    ASSERT_TRUE((*wal)->Sync(*lsn).ok());
  }
  auto segments = ListWalSegments(JoinPath(root_, "rt"));
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 1u);
  auto scan = ScanWalSegment(JoinPath(JoinPath(root_, "rt"), segments->front()));
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->damage.empty());
  // begin, two ops, commit.
  ASSERT_EQ(scan->records.size(), 4u);
  EXPECT_EQ(scan->records[0].kind, WalRecordKind::kBegin);
  EXPECT_EQ(scan->records[1].op.sql, record.op.sql);
  EXPECT_EQ(scan->records[1].op.stmt_seq_before, 13);
  EXPECT_EQ(scan->records[2].op.sql, "DELETE FROM t");
  EXPECT_EQ(scan->records[3].kind, WalRecordKind::kCommit);
  EXPECT_EQ(scan->records[3].txn_id, 7);
}

}  // namespace
}  // namespace ldv::storage
