// CLI flag validation: zero/negative duration flags and a negative plan
// cache bound are usage errors (exit 2) on both binaries, not silent
// misbehavior.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "util/fsutil.h"

namespace ldv {
namespace {

/// Runs a built binary with `args`, returns its exit code (-1 on spawn
/// failure). Output is routed to /dev/null; these invocations are expected
/// to fail fast at flag parsing.
int RunBinary(const std::string& binary, std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(binary.c_str()));
  for (auto& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);
  pid_t pid = fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    FILE* sink = freopen("/dev/null", "w", stderr);
    (void)sink;
    sink = freopen("/dev/null", "w", stdout);
    (void)sink;
    execv(binary.c_str(), argv.data());
    _exit(127);
  }
  int wstatus = 0;
  if (waitpid(pid, &wstatus, 0) < 0) return -1;
  return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
}

std::string ServerBinary() { return FindLdvServerBinary(); }

std::string CliBinary() {
  const std::string server = FindLdvServerBinary();
  if (server.empty()) return "";
  return JoinPath(server.substr(0, server.find_last_of('/')), "ldv");
}

class CliFlagsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (ServerBinary().empty() || !FileExists(CliBinary())) {
      GTEST_SKIP() << "built ldv_server / ldv binaries not found";
    }
  }
};

TEST_F(CliFlagsTest, ServerRejectsNonPositiveDurations) {
  for (const char* flag :
       {"--io-timeout-ms", "--disconnect-poll-ms", "--dedup-ttl-ms"}) {
    for (const char* value : {"0", "-5"}) {
      EXPECT_EQ(RunBinary(ServerBinary(), {flag, value}), 2)
          << flag << "=" << value;
    }
  }
}

TEST_F(CliFlagsTest, ServerRejectsNegativePlanCacheEntries) {
  EXPECT_EQ(RunBinary(ServerBinary(), {"--plan-cache-entries", "-1"}), 2);
}

TEST_F(CliFlagsTest, ServerRejectsUnknownFlag) {
  EXPECT_EQ(RunBinary(ServerBinary(), {"--no-such-flag"}), 2);
}

TEST_F(CliFlagsTest, ServerRejectsStandbyWithoutWal) {
  EXPECT_EQ(RunBinary(ServerBinary(),
                      {"--socket", "/tmp/cli_flags_unused.sock",
                       "--replicate-from", "/tmp/cli_flags_primary.sock"}),
            2);
}

TEST_F(CliFlagsTest, CliRejectsNegativePlanCacheEntries) {
  EXPECT_EQ(
      RunBinary(CliBinary(), {"stats", "--plan-cache-entries", "-1",
                              "--db-socket", "/tmp/cli_flags_unused.sock"}),
      2);
}

TEST_F(CliFlagsTest, HelpStillWorks) {
  EXPECT_EQ(RunBinary(ServerBinary(), {"--help"}), 0);
}

}  // namespace
}  // namespace ldv
