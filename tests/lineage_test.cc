#include <gtest/gtest.h>

#include <set>

#include "exec/executor.h"
#include "storage/database.h"

namespace ldv::exec {
namespace {

using storage::Database;
using storage::TupleVid;
using storage::Value;

/// Tests for Perm-style Lineage computation (paper §IV-D, §VI-A).
class LineageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    exec_ = std::make_unique<Executor>(&db_);
    Run("CREATE TABLE sales (id INT, price DOUBLE)");
    Run("INSERT INTO sales VALUES (1, 5), (2, 11), (3, 14)");
    db_.FindTable("sales")->set_provenance_tracking(true);
  }

  ResultSet Run(const std::string& sql) {
    ExecOptions options;
    options.query_id = ++next_query_id_;
    options.process_id = 77;
    auto result = exec_->Execute(sql, options);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? std::move(result).value() : ResultSet{};
  }

  /// Set of (rowid) referenced by a row's lineage in `table`.
  std::set<int64_t> LineageRowIds(const ResultSet& r, size_t row) {
    std::set<int64_t> out;
    for (const TupleVid& vid : r.lineage[row]) out.insert(vid.rowid);
    return out;
  }

  Database db_;
  std::unique_ptr<Executor> exec_;
  int64_t next_query_id_ = 0;
};

TEST_F(LineageTest, SelectionLineageIsTheQualifyingTuple) {
  ResultSet r = Run("PROVENANCE SELECT id FROM sales WHERE price > 10");
  ASSERT_TRUE(r.has_provenance);
  ASSERT_EQ(r.rows.size(), 2u);
  ASSERT_EQ(r.lineage.size(), 2u);
  EXPECT_EQ(LineageRowIds(r, 0), std::set<int64_t>{2});
  EXPECT_EQ(LineageRowIds(r, 1), std::set<int64_t>{3});
  // prov_tuples carries the values of the lineage tuples.
  ASSERT_EQ(r.prov_tuples.size(), 2u);
  EXPECT_EQ(r.prov_tuples[0].table, "sales");
  EXPECT_DOUBLE_EQ(r.prov_tuples[0].values[1].AsDouble(), 11.0);
}

TEST_F(LineageTest, PaperExample4AggregateLineage) {
  // SELECT sum(price) AS ttl FROM sales WHERE price > 10 -> ttl = 25,
  // Lineage = {t2, t3} (paper Figure 5).
  ResultSet r = Run(
      "PROVENANCE SELECT sum(price) AS ttl FROM sales WHERE price > 10");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 25.0);
  EXPECT_EQ(LineageRowIds(r, 0), (std::set<int64_t>{2, 3}));
}

TEST_F(LineageTest, NonQualifyingTuplesAreExcluded) {
  ResultSet r = Run("PROVENANCE SELECT id FROM sales WHERE id = 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(LineageRowIds(r, 0), std::set<int64_t>{1});
  EXPECT_EQ(r.prov_tuples.size(), 1u);  // t2, t3 not included
}

TEST_F(LineageTest, JoinLineageUnionsBothSides) {
  Run("CREATE TABLE names (id INT, label TEXT)");
  Run("INSERT INTO names VALUES (2, 'two'), (3, 'three')");
  db_.FindTable("names")->set_provenance_tracking(true);
  ResultSet r = Run(
      "PROVENANCE SELECT s.id, n.label FROM sales s, names n "
      "WHERE s.id = n.id ORDER BY s.id");
  ASSERT_EQ(r.rows.size(), 2u);
  // Each output row depends on exactly one sales tuple and one names tuple.
  ASSERT_EQ(r.lineage[0].size(), 2u);
  std::set<int32_t> tables;
  for (const TupleVid& vid : r.lineage[0]) tables.insert(vid.table_id);
  EXPECT_EQ(tables.size(), 2u);
}

TEST_F(LineageTest, GroupByLineagePartitionsByGroup) {
  Run("CREATE TABLE orders2 (okey INT, qty INT)");
  Run("INSERT INTO orders2 VALUES (1, 10), (1, 20), (2, 30)");
  db_.FindTable("orders2")->set_provenance_tracking(true);
  ResultSet r = Run(
      "PROVENANCE SELECT okey, avg(qty) FROM orders2 GROUP BY okey "
      "ORDER BY okey");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.lineage[0].size(), 2u);  // group okey=1: two contributing rows
  EXPECT_EQ(r.lineage[1].size(), 1u);  // group okey=2
}

TEST_F(LineageTest, DistinctUnionsDuplicateLineage) {
  Run("INSERT INTO sales VALUES (4, 11)");  // duplicate price 11
  ResultSet r = Run(
      "PROVENANCE SELECT DISTINCT price FROM sales WHERE price = 11");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.lineage[0].size(), 2u);  // both tuples with price 11
}

TEST_F(LineageTest, CountStarLineageIsAllContributingTuples) {
  ResultSet r = Run("PROVENANCE SELECT count(*) FROM sales");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.lineage[0].size(), 3u);
}

TEST_F(LineageTest, ScanStampsUsedByMetadata) {
  Run("PROVENANCE SELECT id FROM sales WHERE price > 10");
  // query_id was assigned by Run(); process 77 reads the qualifying rows.
  ResultSet check = Run("SELECT prov_usedby, prov_p FROM sales WHERE id = 2");
  EXPECT_GT(check.rows[0][0].AsInt(), 0);
  EXPECT_EQ(check.rows[0][1].AsInt(), 77);
}

TEST_F(LineageTest, NonProvenanceQueryHasNoLineage) {
  ResultSet r = Run("SELECT id FROM sales");
  EXPECT_FALSE(r.has_provenance);
  EXPECT_TRUE(r.lineage.empty());
  EXPECT_TRUE(r.prov_tuples.empty());
}

TEST_F(LineageTest, LineageReferencesCurrentVersions) {
  Run("UPDATE sales SET price = 12 WHERE id = 1");
  ResultSet r = Run("PROVENANCE SELECT id FROM sales WHERE id = 1");
  ASSERT_EQ(r.lineage.size(), 1u);
  const TupleVid& vid = r.lineage[0][0];
  // The lineage points at the *new* version created by the update.
  const storage::RowVersion* live = db_.FindTable("sales")->Find(vid.rowid);
  EXPECT_EQ(live->version, vid.version);
}

TEST_F(LineageTest, LineageSufficiency) {
  // Property (packaging correctness): re-running the query against a copy
  // of the database containing ONLY the lineage tuples yields equal results.
  const std::string query =
      "SELECT id, price FROM sales WHERE price BETWEEN 6 AND 20";
  ResultSet full = Run("PROVENANCE " + query);

  Database subset_db;
  Executor subset_exec(&subset_db);
  auto created = subset_db.CreateTable("sales",
                                       db_.FindTable("sales")->schema());
  ASSERT_TRUE(created.ok());
  for (const ProvTupleRecord& t : full.prov_tuples) {
    storage::RowVersion row;
    row.rowid = t.vid.rowid;
    row.version = t.vid.version;
    row.values = t.values;
    ASSERT_TRUE((*created)->RestoreRow(row).ok());
  }
  auto replayed = subset_exec.Execute(query, {});
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->Fingerprint(), [&] {
    ResultSet plain = Run(query);
    return plain.Fingerprint();
  }());
}

TEST_F(LineageTest, ProvTuplesExcludeJoinEliminatedRows) {
  // Regression: tuples that pass a scan's local filter but are eliminated
  // by the join must NOT appear in the statement's provenance (they are in
  // no result row's Lineage and must not be packaged).
  Run("CREATE TABLE obs (id INT, lum DOUBLE)");
  Run("INSERT INTO obs VALUES (2, 0.9), (3, 0.9), (40, 0.9), (50, 0.9)");
  db_.FindTable("obs")->set_provenance_tracking(true);
  ResultSet r = Run(
      "PROVENANCE SELECT s.id FROM sales s, obs o "
      "WHERE s.id = o.id AND o.lum > 0.5");
  ASSERT_EQ(r.rows.size(), 2u);  // sales 2 and 3 join; obs 40/50 do not
  // Provenance: 2 sales tuples + 2 obs tuples — not the filtered-only rows.
  EXPECT_EQ(r.prov_tuples.size(), 4u);
}

TEST_F(LineageTest, MergeLineageDeduplicates) {
  LineageSet a = {{1, 1, 1}, {1, 3, 1}};
  LineageSet b = {{1, 2, 1}, {1, 3, 1}};
  MergeLineage(&a, b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  MergeLineage(&a, {});
  EXPECT_EQ(a.size(), 3u);
}

}  // namespace
}  // namespace ldv::exec
