// Resource governance (DESIGN.md §11): cooperative cancellation, statement
// deadlines, per-query memory budgets, and the unwind invariants — open
// transactions roll back, worker slots come back, the response-dedup cache
// is never poisoned by a governance kill.

#include <gtest/gtest.h>

#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "exec/governor.h"
#include "net/db_client.h"
#include "net/db_server.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "util/fsutil.h"
#include "util/thread_pool.h"

namespace ldv::net {
namespace {

using exec::InflightQuery;
using exec::MemoryBudget;
using exec::QueryGovernor;
using exec::QueryRegistry;
using storage::Database;

/// A cross join whose predicate never matches: kRows^2 predicate
/// evaluations, zero output rows — long-running but allocation-free, the
/// ideal cancellation target.
constexpr char kHeavySql[] =
    "SELECT count(*) FROM big a, big b WHERE a.val + b.val < -1";

constexpr int kRows = 5000;

/// CREATE + batched INSERTs of the `big` table (id, grp, val >= 0).
void FillBigTable(DbClient* client) {
  ASSERT_TRUE(
      client->Query("CREATE TABLE big (id INT, grp INT, val INT)").ok());
  constexpr int kBatch = 500;
  for (int base = 0; base < kRows; base += kBatch) {
    std::string sql = "INSERT INTO big VALUES ";
    for (int i = base; i < base + kBatch; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 97) + "," +
             std::to_string(i % 7) + ")";
    }
    ASSERT_TRUE(client->Query(sql).ok());
  }
}

// ---------------------------------------------------------------------------
// MemoryBudget / QueryGovernor / QueryRegistry units.
// ---------------------------------------------------------------------------

TEST(MemoryBudgetTest, ChargesAccumulateAndCapFails) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.Charge(400).ok());
  EXPECT_TRUE(budget.Charge(600).ok());  // exactly at the cap: still fine
  Status over = budget.Charge(1);
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  // The charge sticks (the statement is unwinding); peak tracks the total.
  EXPECT_EQ(budget.used(), 1001u);
  EXPECT_EQ(budget.peak(), 1001u);
}

TEST(MemoryBudgetTest, ZeroLimitDisablesTheCapButStillAccounts) {
  MemoryBudget budget;
  EXPECT_TRUE(budget.Charge(1u << 30).ok());
  EXPECT_EQ(budget.used(), 1u << 30);
}

TEST(QueryGovernorTest, CancelFlipsCheckAndFirstCancelWins) {
  QueryGovernor governor;
  EXPECT_TRUE(governor.Check().ok());
  EXPECT_FALSE(governor.cancelled());
  EXPECT_TRUE(governor.Cancel(StatusCode::kCancelled, "first"));
  EXPECT_FALSE(governor.Cancel(StatusCode::kDeadlineExceeded, "second"));
  Status verdict = governor.Check();
  EXPECT_EQ(verdict.code(), StatusCode::kCancelled);
  EXPECT_NE(verdict.message().find("first"), std::string::npos);
}

TEST(QueryGovernorTest, ExpiredDeadlineTripsOnCheck) {
  QueryGovernor governor;
  governor.set_deadline_nanos(NowNanos() - 1);
  EXPECT_EQ(governor.Check().code(), StatusCode::kDeadlineExceeded);
  // Future deadlines do not trip.
  QueryGovernor patient;
  patient.set_deadline_nanos(NowNanos() + 60'000'000'000LL);
  EXPECT_TRUE(patient.Check().ok());
}

TEST(QueryGovernorTest, ChargeMemoryFailsPastTheLimit) {
  QueryGovernor governor;
  governor.set_mem_limit_bytes(100);
  EXPECT_TRUE(governor.ChargeMemory(50).ok());
  EXPECT_EQ(governor.ChargeMemory(60).code(),
            StatusCode::kResourceExhausted);
}

TEST(QueryRegistryTest, CancelTargetsPidQidAndSession) {
  QueryRegistry& registry = QueryRegistry::Global();
  const int64_t baseline = registry.inflight();
  QueryGovernor g1, g2, g3;
  InflightQuery q1;
  q1.process_id = 100;
  q1.query_id = 1;
  q1.session_id = 11;
  InflightQuery q2;
  q2.process_id = 100;
  q2.query_id = 2;
  q2.session_id = 12;
  InflightQuery q3;
  q3.process_id = 200;
  q3.query_id = 1;
  q3.session_id = 13;
  {
    auto r1 = registry.Register(&g1, q1);
    auto r2 = registry.Register(&g2, q2);
    auto r3 = registry.Register(&g3, q3);
    EXPECT_EQ(registry.inflight(), baseline + 3);

    // (pid, qid) hits exactly one statement.
    EXPECT_EQ(registry.CancelQuery(100, 2, StatusCode::kCancelled, "x"), 1);
    EXPECT_FALSE(g1.cancelled());
    EXPECT_TRUE(g2.cancelled());
    EXPECT_FALSE(g3.cancelled());

    // qid == 0 sweeps the whole process; already-cancelled statements are
    // not signalled twice.
    EXPECT_EQ(registry.CancelQuery(100, 0, StatusCode::kCancelled, "x"), 1);
    EXPECT_TRUE(g1.cancelled());
    EXPECT_FALSE(g3.cancelled());

    // Session targeting (the disconnect watcher's path).
    EXPECT_EQ(registry.CancelSession(13, StatusCode::kCancelled, "gone"), 1);
    EXPECT_TRUE(g3.cancelled());

    // A cancel that matches nothing cancels nothing.
    EXPECT_EQ(registry.CancelQuery(999, 0, StatusCode::kCancelled, "x"), 0);
  }
  // RAII: registrations vanish with their scope.
  EXPECT_EQ(registry.inflight(), baseline);
}

// ---------------------------------------------------------------------------
// Engine-level governance: cancel mid-statement, deadlines, budgets.
// ---------------------------------------------------------------------------

class GovernanceEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<EngineHandle>(&db_);
    client_ = std::make_unique<LocalDbClient>(engine_.get());
    FillBigTable(client_.get());
  }

  Database db_;
  std::unique_ptr<EngineHandle> engine_;
  std::unique_ptr<LocalDbClient> client_;
};

TEST_F(GovernanceEngineTest, CancelMidScanUnwindsPromptly) {
  DbRequest request;
  request.sql = kHeavySql;
  request.process_id = 7;
  request.query_id = 1;
  Result<exec::ResultSet> result = Status::Internal("not run");
  std::atomic<int64_t> finished_nanos{0};
  std::thread worker([&] {
    result = client_->Execute(request);
    finished_nanos.store(NowNanos());
  });
  // Wait until the statement is visibly in flight, then kill it.
  QueryRegistry& registry = QueryRegistry::Global();
  bool seen = false;
  const int64_t spin_deadline = NowNanos() + 10'000'000'000LL;
  while (NowNanos() < spin_deadline) {
    for (const InflightQuery& q : registry.Snapshot()) {
      if (q.process_id == 7 && q.query_id == 1) seen = true;
    }
    if (seen) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(seen);
  const int64_t cancel_nanos = NowNanos();
  EXPECT_GE(
      registry.CancelQuery(7, 1, StatusCode::kCancelled, "test cancel"), 0);
  worker.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  // Cooperative checks run at every morsel boundary and inner-loop stride;
  // the unwind is near-immediate (bound kept generous for loaded CI).
  EXPECT_LT(finished_nanos.load() - cancel_nanos, 2'000'000'000LL);
}

TEST_F(GovernanceEngineTest, ServerDefaultDeadlineKillsLongStatements) {
  engine_->set_statement_timeout_millis(25);
  auto result = client_->Query(kHeavySql);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // Quick statements pass untouched.
  EXPECT_TRUE(client_->Query("SELECT count(*) FROM big").ok());
}

TEST_F(GovernanceEngineTest, PerRequestTimeoutOverridesServerDefault) {
  // No server default: the request's own field arms the deadline.
  DbRequest request;
  request.sql = kHeavySql;
  request.timeout_millis = 10;
  auto result = client_->Execute(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  // A generous per-request override outlives a tight server default.
  engine_->set_statement_timeout_millis(1);
  DbRequest relaxed;
  relaxed.sql = "SELECT count(*) FROM big";
  relaxed.timeout_millis = 60'000;
  EXPECT_TRUE(client_->Execute(relaxed).ok());
}

TEST_F(GovernanceEngineTest, MemLimitFailsHashJoinWithResourceExhausted) {
  engine_->set_mem_limit_bytes(64 << 10);
  // The equi-join's build side (5000 materialized rows + hash arrays) blows
  // a 64 KiB budget at the charge, long before any allocation hurts.
  auto result =
      client_->Query("SELECT count(*) FROM big a, big b WHERE a.id = b.id");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  // The engine keeps serving; small statements fit the budget.
  auto ok = client_->Query("SELECT count(*) FROM big WHERE val = 3");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(GovernanceEngineTest, DeadlineInsideTxnAbortsTheTransaction) {
  engine_->set_statement_timeout_millis(25);
  ASSERT_TRUE(client_->Query("BEGIN").ok());
  ASSERT_TRUE(client_->Query("INSERT INTO big VALUES (-1, -1, 0)").ok());
  auto killed = client_->Query(kHeavySql);
  ASSERT_FALSE(killed.ok());
  EXPECT_EQ(killed.status().code(), StatusCode::kDeadlineExceeded);
  // Lift the deadline before verifying: under TSan even the small probe
  // queries below can blow a 25 ms budget, and the bound under test is the
  // kill above, not their latency.
  engine_->set_statement_timeout_millis(0);
  // The statement failure aborted the whole transaction (TxnScope undo):
  // the INSERT is gone and no transaction is open.
  auto count = client_->Query("SELECT count(*) FROM big WHERE id = -1");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count->rows[0][0].AsInt(), 0);
  EXPECT_FALSE(client_->Query("COMMIT").ok());  // nothing to commit
}

TEST_F(GovernanceEngineTest, ParallelMorselsUnwindOnCancel) {
  const int saved_dop = ThreadPool::default_dop();
  ThreadPool::SetDefaultDop(8);
  DbRequest request;
  request.sql = kHeavySql;
  request.process_id = 8;
  request.query_id = 2;
  request.timeout_millis = 20;
  auto result = client_->Execute(request);
  ThreadPool::SetDefaultDop(saved_dop);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // Pool slots were reclaimed: a follow-up parallel statement still runs.
  ThreadPool::SetDefaultDop(8);
  auto again = client_->Query("SELECT grp, count(*) FROM big GROUP BY grp");
  ThreadPool::SetDefaultDop(saved_dop);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->rows.size(), 97u);
}

// ---------------------------------------------------------------------------
// Fault-injection coverage of the new points.
// ---------------------------------------------------------------------------

class GovernanceFaultTest : public GovernanceEngineTest {
 protected:
  void TearDown() override { FaultInjector::Instance().Reset(); }
};

TEST_F(GovernanceFaultTest, CancelCheckFaultPointFires) {
  FaultInjector& injector = FaultInjector::Instance();
  ASSERT_TRUE(
      injector.ConfigureFromSpec("exec.cancel_check=p:1.0").ok());
  injector.Enable(7);
  EXPECT_FALSE(client_->Query("SELECT count(*) FROM big").ok());
  EXPECT_GE(injector.InjectedCount("exec.cancel_check"), 1);
}

TEST_F(GovernanceFaultTest, MemChargeFaultPointFires) {
  FaultInjector& injector = FaultInjector::Instance();
  ASSERT_TRUE(
      injector.ConfigureFromSpec("governor.mem_charge=p:1.0").ok());
  injector.Enable(7);
  // Aggregation charges its partial tables, so the point is on the path.
  EXPECT_FALSE(
      client_->Query("SELECT grp, count(*) FROM big GROUP BY grp").ok());
  EXPECT_GE(injector.InjectedCount("governor.mem_charge"), 1);
}

// ---------------------------------------------------------------------------
// Server-level governance: CANCEL verb, stats, dedup, disconnects.
// ---------------------------------------------------------------------------

class GovernanceServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("ldv_gov_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    engine_ = std::make_unique<EngineHandle>(&db_);
    server_ = std::make_unique<DbServer>(engine_.get(), dir_ + "/db.sock");
    ASSERT_TRUE(server_->Start().ok());
    auto client = SocketDbClient::Connect(server_->socket_path());
    ASSERT_TRUE(client.ok());
    FillBigTable(client->get());
  }

  void TearDown() override {
    server_->Stop();
    ASSERT_TRUE(RemoveAll(dir_).ok());
  }

  /// Raw protocol connection (bypasses SocketDbClient teardown semantics).
  int RawConnect() {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    strcpy(addr.sun_path, server_->socket_path().c_str());
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }

  std::string dir_;
  Database db_;
  std::unique_ptr<EngineHandle> engine_;
  std::unique_ptr<DbServer> server_;
};

TEST_F(GovernanceServerTest, CancelVerbKillsInflightQueryAndStatsListIt) {
  auto runner = SocketDbClient::Connect(server_->socket_path());
  ASSERT_TRUE(runner.ok());
  Result<exec::ResultSet> result = Status::Internal("not run");
  std::thread worker([&] {
    DbRequest request;
    request.sql = kHeavySql;
    request.process_id = 77;
    request.query_id = 5;
    result = (*runner)->Execute(request);
  });

  auto control = SocketDbClient::Connect(server_->socket_path());
  ASSERT_TRUE(control.ok());
  // Spin until the stats in-flight listing shows the statement.
  bool listed = false;
  const int64_t spin_deadline = NowNanos() + 10'000'000'000LL;
  while (!listed && NowNanos() < spin_deadline) {
    auto stats = FetchServerStats(control->get());
    ASSERT_TRUE(stats.ok());
    const Json* inflight = stats->Find("inflight_queries");
    ASSERT_NE(inflight, nullptr);
    for (const Json& q : inflight->AsArray()) {
      if (q.GetInt("process_id", -1) == 77) {
        listed = true;
        EXPECT_NE(q.GetString("sql", "").find("FROM big"),
                  std::string::npos);
        EXPECT_GE(q.GetInt("elapsed_micros", -1), 0);
      }
    }
    if (!listed) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(listed);

  // The CANCEL protocol verb (qid = 0 sweeps the process).
  auto cancelled = CancelServerQuery(control->get(), 77, 0);
  ASSERT_TRUE(cancelled.ok()) << cancelled.status().ToString();
  EXPECT_EQ(*cancelled, 1);
  worker.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);

  // The kill shows up in the metrics snapshot, and the listing drains.
  auto after = FetchServerStats(control->get());
  ASSERT_TRUE(after.ok());
  std::string dump = after->Dump();
  EXPECT_NE(dump.find("exec.cancelled"), std::string::npos);
  EXPECT_EQ(after->Find("inflight_queries")->AsArray().size(), 0u);
}

TEST_F(GovernanceServerTest, GovernanceKillDoesNotPoisonTheDedupCache) {
  auto client = SocketDbClient::Connect(server_->socket_path());
  ASSERT_TRUE(client.ok());
  DbRequest request;
  request.sql = kHeavySql;
  request.process_id = 5;
  request.query_id = 9;
  request.timeout_millis = 1;
  auto killed = (*client)->Execute(request);
  ASSERT_FALSE(killed.ok());
  EXPECT_EQ(killed.status().code(), StatusCode::kDeadlineExceeded);

  // Same (pid, qid, sql): were the kill recorded in the dedup cache, this
  // would instantly replay DeadlineExceeded. It must run afresh instead.
  request.timeout_millis = 600'000;
  auto retried = (*client)->Execute(request);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried->rows[0][0].AsInt(), 0);
  EXPECT_EQ(server_->deduped_requests(), 0);
}

TEST_F(GovernanceServerTest, MemLimitOverSocketLeavesServerServing) {
  engine_->set_mem_limit_bytes(64 << 10);
  auto first = SocketDbClient::Connect(server_->socket_path());
  auto second = SocketDbClient::Connect(server_->socket_path());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  auto blown =
      (*first)->Query("SELECT count(*) FROM big a, big b WHERE a.id = b.id");
  ASSERT_FALSE(blown.ok());
  EXPECT_EQ(blown.status().code(), StatusCode::kResourceExhausted);
  // Both the killing connection and an independent one keep working.
  EXPECT_TRUE((*first)->Query("SELECT count(*) FROM big").ok());
  EXPECT_TRUE((*second)->Query("SELECT count(*) FROM big").ok());
  auto stats = FetchServerStats(second->get());
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->Dump().find("exec.mem_rejected"), std::string::npos);
}

TEST_F(GovernanceServerTest, DisconnectMidQueryCancelsAndRollsBackTxn) {
  // Torture at dop 8: the killed statement holds pool slots that must come
  // back, and its open transaction must roll back on teardown.
  const int saved_dop = ThreadPool::default_dop();
  ThreadPool::SetDefaultDop(8);

  int fd = RawConnect();
  ASSERT_GE(fd, 0);
  auto roundtrip = [&](const std::string& sql) {
    DbRequest request;
    request.sql = sql;
    ASSERT_TRUE(SendFrame(fd, EncodeRequest(request)).ok());
    auto frame = RecvFrame(fd);
    ASSERT_TRUE(frame.ok());
    auto decoded = DecodeResponse(*frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  };
  roundtrip("BEGIN");
  roundtrip("INSERT INTO big VALUES (-1, -1, 0)");
  // Fire the heavy statement and hang up without reading the response: the
  // disconnect watcher must cancel it and teardown must roll the txn back.
  DbRequest heavy;
  heavy.sql = kHeavySql;
  ASSERT_TRUE(SendFrame(fd, EncodeRequest(heavy)).ok());
  ::close(fd);

  // A second session can take the engine over as soon as the kill lands and
  // the transaction unwinds (well inside the 10 s engine-busy limit).
  auto client = SocketDbClient::Connect(server_->socket_path());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Query("BEGIN").ok());
  ASSERT_TRUE((*client)->Query("COMMIT").ok());
  // The torn session's INSERT rolled back.
  auto count = (*client)->Query("SELECT count(*) FROM big WHERE id = -1");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), 0);
  // Worker slots were reclaimed: a parallel statement completes.
  auto grouped = (*client)->Query("SELECT grp, count(*) FROM big GROUP BY grp");
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  EXPECT_EQ(grouped->rows.size(), 97u);
  ThreadPool::SetDefaultDop(saved_dop);

  // The engine recorded the rollback; the cancel is attributed to the
  // disconnect watcher (poll cadence ~20 ms, so give it a moment to be
  // counted even though the query is already dead).
  auto stats = FetchServerStats(client->get());
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->Dump().find("engine.txns_rolled_back"), std::string::npos);
  const int64_t spin_deadline = NowNanos() + 5'000'000'000LL;
  while (server_->disconnect_cancels() == 0 && NowNanos() < spin_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server_->disconnect_cancels(), 1);
  // And the in-flight listing drains once the killed statement unwinds
  // (the watcher counts the signal; the statement needs a few more morsel
  // checks to observe it and unregister, so poll).
  size_t still_inflight = 1;
  const int64_t drain_deadline = NowNanos() + 5'000'000'000LL;
  while (still_inflight != 0 && NowNanos() < drain_deadline) {
    auto after = FetchServerStats(client->get());
    ASSERT_TRUE(after.ok());
    still_inflight = after->Find("inflight_queries")->AsArray().size();
    if (still_inflight != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_EQ(still_inflight, 0u);
}

}  // namespace
}  // namespace ldv::net
