#include <gtest/gtest.h>

#include "trace/graph.h"
#include "trace/model.h"
#include "common/json.h"
#include "trace/prov_export.h"
#include "trace/serialize.h"

namespace ldv::trace {
namespace {

TEST(ModelTest, ActivityEntityClassification) {
  EXPECT_TRUE(IsActivity(NodeType::kProcess));
  EXPECT_TRUE(IsActivity(NodeType::kQuery));
  EXPECT_TRUE(IsActivity(NodeType::kInsert));
  EXPECT_TRUE(IsActivity(NodeType::kUpdate));
  EXPECT_TRUE(IsActivity(NodeType::kDelete));
  EXPECT_FALSE(IsActivity(NodeType::kFile));
  EXPECT_FALSE(IsActivity(NodeType::kTuple));
  EXPECT_TRUE(IsEntity(NodeType::kFile));
}

TEST(ModelTest, ModelSides) {
  EXPECT_EQ(SideOf(NodeType::kProcess), ModelSide::kOs);
  EXPECT_EQ(SideOf(NodeType::kFile), ModelSide::kOs);
  EXPECT_EQ(SideOf(NodeType::kQuery), ModelSide::kDb);
  EXPECT_EQ(SideOf(NodeType::kTuple), ModelSide::kDb);
}

TEST(ModelTest, EdgeTypeRulesMatchDefinition5) {
  // P_BB edges.
  EXPECT_TRUE(EdgeAllowed(EdgeType::kReadFrom, NodeType::kFile,
                          NodeType::kProcess));
  EXPECT_TRUE(EdgeAllowed(EdgeType::kHasWritten, NodeType::kProcess,
                          NodeType::kFile));
  EXPECT_TRUE(EdgeAllowed(EdgeType::kExecuted, NodeType::kProcess,
                          NodeType::kProcess));
  // P_Lin edges.
  EXPECT_TRUE(
      EdgeAllowed(EdgeType::kHasRead, NodeType::kTuple, NodeType::kQuery));
  EXPECT_TRUE(EdgeAllowed(EdgeType::kHasRead, NodeType::kTuple,
                          NodeType::kUpdate));
  EXPECT_TRUE(EdgeAllowed(EdgeType::kHasReturned, NodeType::kInsert,
                          NodeType::kTuple));
  // Cross-model edges of Definition 5.
  EXPECT_TRUE(
      EdgeAllowed(EdgeType::kRun, NodeType::kProcess, NodeType::kQuery));
  EXPECT_TRUE(EdgeAllowed(EdgeType::kReadFromDb, NodeType::kTuple,
                          NodeType::kProcess));
  // Forbidden combinations.
  EXPECT_FALSE(
      EdgeAllowed(EdgeType::kReadFrom, NodeType::kTuple, NodeType::kProcess));
  EXPECT_FALSE(
      EdgeAllowed(EdgeType::kHasWritten, NodeType::kQuery, NodeType::kFile));
  EXPECT_FALSE(
      EdgeAllowed(EdgeType::kRun, NodeType::kQuery, NodeType::kProcess));
  EXPECT_FALSE(EdgeAllowed(EdgeType::kExecuted, NodeType::kProcess,
                           NodeType::kQuery));
}

TEST(TraceGraphTest, NodeDeduplication) {
  TraceGraph g;
  NodeId a = g.GetOrAddNode(NodeType::kFile, "/data/a");
  NodeId a2 = g.GetOrAddNode(NodeType::kFile, "/data/a");
  NodeId b = g.GetOrAddNode(NodeType::kProcess, "/data/a");  // other type
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.FindNode(NodeType::kFile, "/data/a"), a);
  EXPECT_EQ(g.FindNode(NodeType::kFile, "/nope"), kInvalidNode);
}

TEST(TraceGraphTest, EdgeValidation) {
  TraceGraph g;
  NodeId file = g.GetOrAddNode(NodeType::kFile, "f");
  NodeId proc = g.GetOrAddNode(NodeType::kProcess, "p");
  EXPECT_TRUE(g.AddEdge(file, proc, EdgeType::kReadFrom, {1, 2}).ok());
  EXPECT_FALSE(g.AddEdge(proc, file, EdgeType::kReadFrom, {1, 2}).ok());
  EXPECT_FALSE(g.AddEdge(file, proc, EdgeType::kReadFrom, {3, 2}).ok());
  EXPECT_FALSE(g.AddEdge(file, 99, EdgeType::kReadFrom, {1, 2}).ok());
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.OutEdges(file).size(), 1u);
  EXPECT_EQ(g.InEdges(proc).size(), 1u);
}

TEST(TraceGraphTest, MergeEdgeExtendsInterval) {
  // The PTU convention: one readFrom edge per (file, process) annotated
  // with [first open, last close].
  TraceGraph g;
  NodeId file = g.GetOrAddNode(NodeType::kFile, "f");
  NodeId proc = g.GetOrAddNode(NodeType::kProcess, "p");
  ASSERT_TRUE(g.MergeEdge(file, proc, EdgeType::kReadFrom, {5, 6}).ok());
  ASSERT_TRUE(g.MergeEdge(file, proc, EdgeType::kReadFrom, {1, 2}).ok());
  ASSERT_TRUE(g.MergeEdge(file, proc, EdgeType::kReadFrom, {9, 12}).ok());
  ASSERT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edges()[0].t.begin, 1);
  EXPECT_EQ(g.edges()[0].t.end, 12);
}

TEST(TraceGraphTest, TupleDependencies) {
  TraceGraph g;
  NodeId t1 = g.GetOrAddNode(NodeType::kTuple, "t1");
  NodeId t4 = g.GetOrAddNode(NodeType::kTuple, "t4");
  NodeId t3 = g.GetOrAddNode(NodeType::kTuple, "t3");
  g.AddTupleDependency(t4, t1);
  g.AddTupleDependency(t4, t1);  // dedup
  g.AddTupleDependency(t4, t3);
  EXPECT_TRUE(g.HasTupleDependency(t4, t1));
  EXPECT_FALSE(g.HasTupleDependency(t1, t4));
  EXPECT_EQ(g.TupleDependenciesOf(t4).size(), 2u);
  EXPECT_TRUE(g.TupleDependenciesOf(t1).empty());
}

/// Builds the combined execution trace of paper Figure 2: P1 reads files A
/// and B and runs Insert1/Insert2 creating t1,t2,t3; P2 runs Query reading
/// t1,t3 and returning t4,t5, then writes file C.
TraceGraph BuildFigure2Trace() {
  TraceGraph g;
  NodeId file_a = g.GetOrAddNode(NodeType::kFile, "A");
  NodeId file_b = g.GetOrAddNode(NodeType::kFile, "B");
  NodeId file_c = g.GetOrAddNode(NodeType::kFile, "C");
  NodeId p1 = g.GetOrAddNode(NodeType::kProcess, "P1");
  NodeId p2 = g.GetOrAddNode(NodeType::kProcess, "P2");
  NodeId insert1 = g.GetOrAddNode(NodeType::kInsert, "Insert1");
  NodeId insert2 = g.GetOrAddNode(NodeType::kInsert, "Insert2");
  NodeId query = g.GetOrAddNode(NodeType::kQuery, "Query");
  NodeId t1 = g.GetOrAddNode(NodeType::kTuple, "t1");
  NodeId t2 = g.GetOrAddNode(NodeType::kTuple, "t2");
  NodeId t3 = g.GetOrAddNode(NodeType::kTuple, "t3");
  NodeId t4 = g.GetOrAddNode(NodeType::kTuple, "t4");
  NodeId t5 = g.GetOrAddNode(NodeType::kTuple, "t5");

  EXPECT_TRUE(g.AddEdge(file_a, p1, EdgeType::kReadFrom, {1, 6}).ok());
  EXPECT_TRUE(g.AddEdge(file_b, p1, EdgeType::kReadFrom, {7, 8}).ok());
  EXPECT_TRUE(g.AddEdge(p1, insert1, EdgeType::kRun, {5, 5}).ok());
  EXPECT_TRUE(g.AddEdge(p1, insert2, EdgeType::kRun, {8, 8}).ok());
  EXPECT_TRUE(g.AddEdge(insert1, t1, EdgeType::kHasReturned, {5, 5}).ok());
  EXPECT_TRUE(g.AddEdge(insert1, t2, EdgeType::kHasReturned, {5, 5}).ok());
  EXPECT_TRUE(g.AddEdge(insert2, t3, EdgeType::kHasReturned, {8, 8}).ok());
  EXPECT_TRUE(g.AddEdge(t1, query, EdgeType::kHasRead, {9, 9}).ok());
  EXPECT_TRUE(g.AddEdge(t3, query, EdgeType::kHasRead, {9, 9}).ok());
  EXPECT_TRUE(g.AddEdge(p2, query, EdgeType::kRun, {9, 9}).ok());
  EXPECT_TRUE(g.AddEdge(query, t4, EdgeType::kHasReturned, {9, 9}).ok());
  EXPECT_TRUE(g.AddEdge(query, t5, EdgeType::kHasReturned, {9, 9}).ok());
  EXPECT_TRUE(g.AddEdge(t4, p2, EdgeType::kReadFromDb, {9, 9}).ok());
  EXPECT_TRUE(g.AddEdge(t5, p2, EdgeType::kReadFromDb, {9, 9}).ok());
  EXPECT_TRUE(g.AddEdge(p2, file_c, EdgeType::kHasWritten, {7, 12}).ok());
  g.AddTupleDependency(t4, t1);
  g.AddTupleDependency(t4, t3);
  g.AddTupleDependency(t5, t1);
  g.AddTupleDependency(t5, t3);
  return g;
}

TEST(TraceGraphTest, Figure2TraceBuildsAndValidates) {
  TraceGraph g = BuildFigure2Trace();
  EXPECT_EQ(g.num_nodes(), 13);
  EXPECT_EQ(g.num_edges(), 15);
  EXPECT_EQ(g.NodesOfType(NodeType::kTuple).size(), 5u);
  EXPECT_EQ(g.NodesOfType(NodeType::kProcess).size(), 2u);
}

TEST(TraceGraphTest, DotRenderingMentionsEveryNode) {
  TraceGraph g = BuildFigure2Trace();
  std::string dot = g.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("Insert1"), std::string::npos);
  EXPECT_NE(dot.find("readFrom"), std::string::npos);
  EXPECT_NE(dot.find("dep"), std::string::npos);
}

TEST(TraceSerializeTest, RoundTrip) {
  TraceGraph g = BuildFigure2Trace();
  std::string bytes = SerializeTrace(g);
  auto restored = DeserializeTrace(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_nodes(), g.num_nodes());
  EXPECT_EQ(restored->num_edges(), g.num_edges());
  NodeId t4 = restored->FindNode(NodeType::kTuple, "t4");
  NodeId t1 = restored->FindNode(NodeType::kTuple, "t1");
  ASSERT_NE(t4, kInvalidNode);
  EXPECT_TRUE(restored->HasTupleDependency(t4, t1));
  // Edge intervals survive.
  NodeId file_a = restored->FindNode(NodeType::kFile, "A");
  ASSERT_EQ(restored->OutEdges(file_a).size(), 1u);
  const TraceEdge& edge =
      restored->edges()[static_cast<size_t>(restored->OutEdges(file_a)[0])];
  EXPECT_EQ(edge.t.begin, 1);
  EXPECT_EQ(edge.t.end, 6);
}

TEST(TraceSerializeTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeTrace("not a trace").ok());
  EXPECT_FALSE(DeserializeTrace("").ok());
}

TEST(ProvExportTest, Figure2ExportsAsValidProvJson) {
  TraceGraph g = BuildFigure2Trace();
  std::string text = ExportProvJson(g);
  auto doc = Json::Parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  // 2 processes + 3 statements = 5 activities; 3 files + 5 tuples = 8
  // entities.
  EXPECT_EQ(doc->Find("activity")->AsObject().size(), 5u);
  EXPECT_EQ(doc->Find("entity")->AsObject().size(), 8u);
  // used: 2 file reads + 2 hasRead + 2 readFromDb = 6.
  EXPECT_EQ(doc->Find("used")->AsObject().size(), 6u);
  // wasGeneratedBy: 3 insert-returns + 2 query-returns + 1 file write = 6.
  EXPECT_EQ(doc->Find("wasGeneratedBy")->AsObject().size(), 6u);
  // wasStartedBy: 3 run edges (no executed edges in Figure 2).
  EXPECT_EQ(doc->Find("wasStartedBy")->AsObject().size(), 3u);
  // wasDerivedFrom: the 4 Lineage pairs t4/t5 -> t1/t3.
  EXPECT_EQ(doc->Find("wasDerivedFrom")->AsObject().size(), 4u);

  // Every referenced qualified name resolves to a declared node, and time
  // intervals are preserved.
  const auto& activities = doc->Find("activity")->AsObject();
  const auto& entities = doc->Find("entity")->AsObject();
  for (const auto& [key, record] : doc->Find("used")->AsObject()) {
    EXPECT_TRUE(activities.contains(record.GetString("prov:activity", "")))
        << key;
    EXPECT_TRUE(entities.contains(record.GetString("prov:entity", "")))
        << key;
    EXPECT_LE(record.GetInt("ldv:begin", 99), record.GetInt("ldv:end", 0));
  }
  EXPECT_NE(text.find("\"prov:type\": \"ldv:query\""), std::string::npos);
}

}  // namespace
}  // namespace ldv::trace
