#include <gtest/gtest.h>

#include <functional>

#include "common/clock.h"
#include "exec/executor.h"
#include "obs/profile.h"
#include "storage/database.h"

namespace ldv::exec {
namespace {

using storage::Database;
using storage::Value;

/// Tests for the engine extensions: LEFT JOIN, uncorrelated subqueries,
/// EXISTS, and hash indexes.
class ExecFeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    exec_ = std::make_unique<Executor>(&db_);
    Run("CREATE TABLE dept (id INT, name TEXT)");
    Run("INSERT INTO dept VALUES (1, 'eng'), (2, 'ops'), (3, 'empty')");
    Run("CREATE TABLE emp (id INT, dept_id INT, salary INT)");
    Run("INSERT INTO emp VALUES (10, 1, 100), (11, 1, 120), (12, 2, 90)");
  }

  ResultSet Run(const std::string& sql) {
    auto result = exec_->Execute(sql, {});
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? std::move(result).value() : ResultSet{};
  }

  Database db_;
  std::unique_ptr<Executor> exec_;
};

TEST_F(ExecFeaturesTest, LeftJoinPadsUnmatchedRows) {
  ResultSet r = Run(
      "SELECT d.name, e.salary FROM dept d LEFT JOIN emp e "
      "ON d.id = e.dept_id ORDER BY d.name, e.salary");
  ASSERT_EQ(r.rows.size(), 4u);  // eng x2, ops x1, empty padded
  EXPECT_EQ(r.rows[0][0].AsString(), "empty");
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_EQ(r.rows[1][0].AsString(), "eng");
  EXPECT_EQ(r.rows[3][0].AsString(), "ops");
}

TEST_F(ExecFeaturesTest, LeftJoinWhereAppliesAfterPadding) {
  // WHERE on the right side filters padded rows (NULL never qualifies).
  ResultSet with_where = Run(
      "SELECT d.name FROM dept d LEFT JOIN emp e ON d.id = e.dept_id "
      "WHERE e.salary > 95");
  EXPECT_EQ(with_where.rows.size(), 2u);  // eng's two employees over 95
  // IS NULL finds the unmatched rows — the anti-join idiom.
  ResultSet anti = Run(
      "SELECT d.name FROM dept d LEFT JOIN emp e ON d.id = e.dept_id "
      "WHERE e.salary IS NULL");
  ASSERT_EQ(anti.rows.size(), 1u);
  EXPECT_EQ(anti.rows[0][0].AsString(), "empty");
}

TEST_F(ExecFeaturesTest, LeftJoinWithResidualOnCondition) {
  // Non-equi ON residual decides matching, not post-filtering.
  ResultSet r = Run(
      "SELECT d.id AS did, e.id AS eid FROM dept d LEFT JOIN emp e "
      "ON d.id = e.dept_id AND e.salary > 100 ORDER BY did");
  // eng matches only emp 11 (salary 120); ops/empty padded.
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 11);
  EXPECT_TRUE(r.rows[1][1].is_null());
  EXPECT_TRUE(r.rows[2][1].is_null());
}

TEST_F(ExecFeaturesTest, LeftJoinLineageOfPaddedRowIsLeftOnly) {
  db_.FindTable("dept")->set_provenance_tracking(true);
  db_.FindTable("emp")->set_provenance_tracking(true);
  ResultSet r = Run(
      "PROVENANCE SELECT d.name, e.salary FROM dept d LEFT JOIN emp e "
      "ON d.id = e.dept_id ORDER BY d.name");
  ASSERT_EQ(r.rows.size(), 4u);
  // Row 0 is 'empty' (padded): lineage = the dept tuple only.
  EXPECT_EQ(r.lineage[0].size(), 1u);
  // Matched rows carry both sides.
  EXPECT_EQ(r.lineage[1].size(), 2u);
}

TEST_F(ExecFeaturesTest, ScalarSubquery) {
  ResultSet r = Run(
      "SELECT id FROM emp WHERE salary = (SELECT max(salary) FROM emp)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 11);
  // Empty scalar subquery yields NULL (matches nothing).
  EXPECT_EQ(Run("SELECT id FROM emp WHERE salary = "
                "(SELECT salary FROM emp WHERE id = 999)")
                .rows.size(),
            0u);
  // Multi-row scalar subquery is an error.
  auto bad = exec_->Execute(
      "SELECT id FROM emp WHERE salary = (SELECT salary FROM emp)", {});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExecFeaturesTest, InSubquery) {
  ResultSet r = Run(
      "SELECT name FROM dept WHERE id IN (SELECT dept_id FROM emp) "
      "ORDER BY name");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "eng");
  EXPECT_EQ(r.rows[1][0].AsString(), "ops");
  ResultSet negated = Run(
      "SELECT name FROM dept WHERE id NOT IN (SELECT dept_id FROM emp)");
  ASSERT_EQ(negated.rows.size(), 1u);
  EXPECT_EQ(negated.rows[0][0].AsString(), "empty");
}

TEST_F(ExecFeaturesTest, ExistsSubquery) {
  EXPECT_EQ(Run("SELECT name FROM dept WHERE EXISTS "
                "(SELECT 1 FROM emp WHERE salary > 110)")
                .rows.size(),
            3u);  // uncorrelated EXISTS is true for every row
  EXPECT_EQ(Run("SELECT name FROM dept WHERE EXISTS "
                "(SELECT 1 FROM emp WHERE salary > 999)")
                .rows.size(),
            0u);
  EXPECT_EQ(Run("SELECT name FROM dept WHERE NOT EXISTS "
                "(SELECT 1 FROM emp WHERE salary > 999)")
                .rows.size(),
            3u);
}

TEST_F(ExecFeaturesTest, CorrelatedSubqueryIsRejectedCleanly) {
  auto result = exec_->Execute(
      "SELECT name FROM dept d WHERE EXISTS "
      "(SELECT 1 FROM emp e WHERE e.dept_id = d.id)",
      {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound)
      << result.status().ToString();  // d.id unknown inside the subquery
}

TEST_F(ExecFeaturesTest, SubqueryLineageIsAmbient) {
  db_.FindTable("dept")->set_provenance_tracking(true);
  db_.FindTable("emp")->set_provenance_tracking(true);
  ResultSet r = Run(
      "PROVENANCE SELECT id FROM emp WHERE salary = "
      "(SELECT max(salary) FROM emp)");
  ASSERT_EQ(r.rows.size(), 1u);
  // The result row depends on its own tuple AND on every tuple the subquery
  // aggregated over (conservative ambient lineage).
  EXPECT_EQ(r.lineage[0].size(), 3u);
  EXPECT_EQ(r.prov_tuples.size(), 3u);
}

TEST_F(ExecFeaturesTest, SubqueryInUpdateWhere) {
  Run("UPDATE emp SET salary = salary + 1 WHERE dept_id IN "
      "(SELECT id FROM dept WHERE name = 'eng')");
  EXPECT_EQ(Run("SELECT sum(salary) FROM emp").rows[0][0].AsInt(),
            100 + 120 + 2 + 90);
  // Salaries are now 101, 121, 90 (avg 104): the delete removes 101 and 90.
  Run("DELETE FROM emp WHERE salary < (SELECT avg(salary) FROM emp)");
  EXPECT_EQ(Run("SELECT count(*) FROM emp").rows[0][0].AsInt(), 1);
}

class IndexTest : public ExecFeaturesTest {};

TEST_F(IndexTest, CreateIndexAndLookup) {
  Run("CREATE INDEX idx_emp_dept ON emp (dept_id)");
  storage::Table* emp = db_.FindTable("emp");
  int col = emp->schema().IndexOf("dept_id");
  EXPECT_TRUE(emp->HasIndexOn(col));
  EXPECT_EQ(emp->IndexLookup(col, Value::Int(1)).size(), 2u);
  EXPECT_EQ(emp->IndexLookup(col, Value::Int(9)).size(), 0u);
  // NULL probes never match.
  EXPECT_TRUE(emp->IndexLookup(col, Value::Null()).empty());

  EXPECT_FALSE(
      exec_->Execute("CREATE INDEX idx_emp_dept ON emp (dept_id)", {}).ok());
  Run("CREATE INDEX IF NOT EXISTS idx_emp_dept ON emp (dept_id)");
  EXPECT_FALSE(exec_->Execute("CREATE INDEX i ON emp (nope)", {}).ok());
  EXPECT_FALSE(exec_->Execute("CREATE INDEX i ON nope (x)", {}).ok());
}

TEST_F(IndexTest, IndexStaysConsistentAcrossDml) {
  Run("CREATE INDEX idx ON emp (dept_id)");
  storage::Table* emp = db_.FindTable("emp");
  int col = emp->schema().IndexOf("dept_id");
  Run("INSERT INTO emp VALUES (13, 1, 70)");
  EXPECT_EQ(emp->IndexLookup(col, Value::Int(1)).size(), 3u);
  Run("UPDATE emp SET dept_id = 2 WHERE id = 10");
  EXPECT_EQ(emp->IndexLookup(col, Value::Int(1)).size(), 2u);
  EXPECT_EQ(emp->IndexLookup(col, Value::Int(2)).size(), 2u);
  Run("DELETE FROM emp WHERE dept_id = 2");
  EXPECT_TRUE(emp->IndexLookup(col, Value::Int(2)).empty());
}

TEST_F(IndexTest, IndexedQueriesMatchScans) {
  // Same query with and without index must agree (including row order).
  const std::string query = "SELECT id, salary FROM emp WHERE dept_id = 1";
  ResultSet before = Run(query);
  Run("CREATE INDEX idx ON emp (dept_id)");
  ResultSet after = Run(query);
  EXPECT_EQ(before.Fingerprint(), after.Fingerprint());
  // And with provenance: lineage via the probe equals lineage via the scan.
  db_.FindTable("emp")->set_provenance_tracking(true);
  ResultSet prov = Run("PROVENANCE " + query);
  ASSERT_EQ(prov.rows.size(), 2u);
  EXPECT_EQ(prov.lineage[0].size(), 1u);
  EXPECT_EQ(prov.prov_tuples.size(), 2u);
}

TEST_F(IndexTest, UpdatesUseTheIndexFastPath) {
  Run("CREATE INDEX idx ON emp (id)");
  // Correctness of the indexed reenactment path.
  Run("UPDATE emp SET salary = 999 WHERE id = 11");
  EXPECT_EQ(Run("SELECT salary FROM emp WHERE id = 11").rows[0][0].AsInt(),
            999);
  Run("DELETE FROM emp WHERE id = 10");
  EXPECT_EQ(Run("SELECT count(*) FROM emp").rows[0][0].AsInt(), 2);
}

TEST_F(IndexTest, IndexProbeSpeedsUpPointLookups) {
  // Build a larger table and compare wall time scan vs probe. Generous
  // threshold: the probe must be at least 3x faster at 20k rows.
  Run("CREATE TABLE big (k INT, v INT)");
  std::string values;
  for (int i = 0; i < 20000; ++i) {
    if (i > 0) values += ",";
    values += "(" + std::to_string(i) + "," + std::to_string(i * 3) + ")";
  }
  Run("INSERT INTO big VALUES " + values);
  const std::string query = "SELECT v FROM big WHERE k = 19999";
  WallTimer timer;
  for (int i = 0; i < 50; ++i) Run(query);
  double scan_seconds = timer.Seconds();
  Run("CREATE INDEX idx_big ON big (k)");
  timer.Restart();
  for (int i = 0; i < 50; ++i) Run(query);
  double probe_seconds = timer.Seconds();
  EXPECT_LT(probe_seconds * 3, scan_seconds)
      << "scan=" << scan_seconds << " probe=" << probe_seconds;
}

TEST_F(ExecFeaturesTest, ExplainAnalyzeReportsPerOperatorStats) {
  Run("CREATE TABLE loc (dept_id INT, city TEXT)");
  Run("INSERT INTO loc VALUES (1, 'nyc'), (2, 'sfo')");
  ResultSet r = Run(
      "EXPLAIN ANALYZE SELECT d.name, COUNT(e.id), SUM(e.salary) "
      "FROM emp e JOIN dept d ON e.dept_id = d.id "
      "JOIN loc l ON l.dept_id = d.id "
      "GROUP BY d.name ORDER BY d.name");

  // Rendered plan: a single "QUERY PLAN" text column, one line per operator.
  ASSERT_EQ(r.schema.num_columns(), 1);
  EXPECT_EQ(r.schema.column(0).name, "QUERY PLAN");
  ASSERT_FALSE(r.rows.empty());
  std::string rendered;
  for (const auto& row : r.rows) rendered += row[0].AsString() + "\n";
  EXPECT_NE(rendered.find("rows="), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("time="), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("Total:"), std::string::npos) << rendered;

  // Structured profile: the 3-way join + GROUP BY plan with real row counts.
  ASSERT_NE(r.profile, nullptr);
  EXPECT_EQ(r.profile->rows_returned, 2);  // groups: eng, ops
  int scans = 0, joins = 0, aggregates = 0;
  int64_t join_build_nanos = 0;
  std::function<void(const obs::OperatorProfile&)> walk =
      [&](const obs::OperatorProfile& op) {
        EXPECT_EQ(op.invocations, 1) << op.label;
        EXPECT_GE(op.wall_nanos, 0) << op.label;
        if (op.label == "Scan") {
          ++scans;
          EXPECT_GT(op.rows_out, 0) << op.detail;
        } else if (op.label == "HashJoin") {
          ++joins;
          join_build_nanos += op.build_nanos;
        } else if (op.label == "Aggregate") {
          ++aggregates;
          EXPECT_EQ(op.rows_out, 2);
        }
        for (const obs::OperatorProfile& child : op.children) walk(child);
      };
  walk(r.profile->root);
  EXPECT_EQ(scans, 3);
  EXPECT_EQ(joins, 2);
  EXPECT_EQ(aggregates, 1);
  EXPECT_GE(join_build_nanos, 0);
}

TEST_F(ExecFeaturesTest, PlainExplainOmitsRuntimeColumns) {
  ResultSet r = Run(
      "EXPLAIN SELECT d.name, e.salary FROM dept d JOIN emp e "
      "ON d.id = e.dept_id WHERE e.salary > 95");
  ASSERT_FALSE(r.rows.empty());
  EXPECT_EQ(r.profile, nullptr);  // plans only; nothing executed
  for (const auto& row : r.rows) {
    const std::string line = row[0].AsString();
    EXPECT_EQ(line.find("rows="), std::string::npos) << line;
    EXPECT_EQ(line.find("time="), std::string::npos) << line;
  }
  // The join and both scans still appear in the rendered plan.
  std::string rendered;
  for (const auto& row : r.rows) rendered += row[0].AsString() + "\n";
  EXPECT_NE(rendered.find("HashJoin"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("Scan"), std::string::npos) << rendered;
}

}  // namespace
}  // namespace ldv::exec
