#include <gtest/gtest.h>

#include "ldv/app.h"
#include "ldv/manifest.h"
#include "ldv/vm_image_model.h"
#include "util/fsutil.h"

namespace ldv {
namespace {

TEST(PackageModeTest, NamesRoundTrip) {
  for (PackageMode mode :
       {PackageMode::kServerIncluded, PackageMode::kServerExcluded,
        PackageMode::kPtu, PackageMode::kVmImage}) {
    auto parsed = ParsePackageMode(PackageModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(ParsePackageMode("zip").ok());
}

TEST(ManifestTest, JsonRoundTrip) {
  PackageManifest m;
  m.mode = PackageMode::kServerIncluded;
  m.tables.push_back({"orders", "CREATE TABLE orders (o_orderkey INT);", 42});
  m.tables.push_back({"lineitem", "CREATE TABLE lineitem (l_orderkey INT);",
                      7});
  m.files = {"/input/a.txt", "/input/b.txt"};
  m.statements_recorded = 5;
  m.processes = 2;
  m.has_trace = true;
  m.has_server_binary = true;

  auto restored = PackageManifest::FromJson(m.ToJson());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->mode, PackageMode::kServerIncluded);
  ASSERT_EQ(restored->tables.size(), 2u);
  EXPECT_EQ(restored->tables[0].name, "orders");
  EXPECT_EQ(restored->tables[0].rows, 42);
  EXPECT_EQ(restored->files, m.files);
  EXPECT_EQ(restored->statements_recorded, 5);
  EXPECT_TRUE(restored->has_trace);
  EXPECT_TRUE(restored->has_server_binary);
  EXPECT_FALSE(restored->has_full_data);
}

TEST(ManifestTest, RejectsForeignJson) {
  EXPECT_FALSE(PackageManifest::FromJson("{\"format\": \"zip\"}").ok());
  EXPECT_FALSE(PackageManifest::FromJson("not json").ok());
}

TEST(ManifestTest, SaveLoadOnDisk) {
  auto dir = MakeTempDir("ldv_manifest_");
  ASSERT_TRUE(dir.ok());
  PackageManifest m;
  m.mode = PackageMode::kServerExcluded;
  m.statements_recorded = 11;
  ASSERT_TRUE(m.Save(*dir).ok());
  auto loaded = PackageManifest::Load(*dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->mode, PackageMode::kServerExcluded);
  EXPECT_EQ(loaded->statements_recorded, 11);
  EXPECT_FALSE(PackageManifest::Load(*dir + "/nope").ok());
  ASSERT_TRUE(RemoveAll(*dir).ok());
}

TEST(VmImageModelTest, SizesAndTimings) {
  VmImageParams params;
  params.scale = 0.01;
  VmImageModel model(params);
  // Base image scales: 7.2 GB * 0.01 = 72 MB.
  EXPECT_EQ(model.ScaledBaseImageBytes(), 72000000);
  EXPECT_EQ(model.ImageSizeBytes(10000000, 500000), 82500000);
  EXPECT_DOUBLE_EQ(model.BootSeconds(), 0.4);
  EXPECT_DOUBLE_EQ(model.ReplaySeconds(2.0), 2.3);
  // The paper's headline: at scale 1 with a 1 GB DB the image is ~8.2 GB.
  VmImageModel full{};
  EXPECT_NEAR(static_cast<double>(full.ImageSizeBytes(1000000000, 0)),
              8.2e9, 1e8);
}

}  // namespace
}  // namespace ldv
