#include <gtest/gtest.h>

#include "os/ptrace_tracer.h"
#include "os/sim_process.h"
#include "os/vfs.h"
#include "util/fsutil.h"

namespace ldv::os {
namespace {

class VfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("ldv_vfs_");
    ASSERT_TRUE(dir.ok());
    root_ = *dir;
    vfs_ = std::make_unique<Vfs>(root_);
  }
  void TearDown() override { ASSERT_TRUE(RemoveAll(root_).ok()); }

  std::string root_;
  std::unique_ptr<Vfs> vfs_;
};

TEST_F(VfsTest, ReadWriteWithinSandbox) {
  ASSERT_TRUE(vfs_->WriteFile("/data/in.txt", "hello").ok());
  auto text = vfs_->ReadFile("/data/in.txt");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "hello");
  EXPECT_TRUE(vfs_->Exists("/data/in.txt"));
  EXPECT_FALSE(vfs_->Exists("/data/out.txt"));
  EXPECT_EQ(*vfs_->FileSize("/data/in.txt"), 5);
  ASSERT_TRUE(vfs_->AppendFile("/data/in.txt", " world").ok());
  EXPECT_EQ(*vfs_->ReadFile("/data/in.txt"), "hello world");
  auto all = vfs_->ListAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, std::vector<std::string>{"/data/in.txt"});
}

TEST_F(VfsTest, RejectsEscapes) {
  EXPECT_FALSE(vfs_->HostPath("relative/path").ok());
  EXPECT_FALSE(vfs_->HostPath("/data/../../etc/passwd").ok());
  EXPECT_TRUE(vfs_->HostPath("/data/x").ok());
  EXPECT_EQ(*vfs_->HostPath("/a/b"), root_ + "/a/b");
}

/// Collects every emitted event for inspection.
class CapturingSink : public OsEventSink {
 public:
  void OnOsEvent(const OsEvent& event) override { events.push_back(event); }
  std::vector<OsEvent> events;
};

class SimProcessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("ldv_sim_");
    ASSERT_TRUE(dir.ok());
    root_ = *dir;
    vfs_ = std::make_unique<Vfs>(root_);
    os_ = std::make_unique<SimOs>(vfs_.get(), &clock_, &sink_);
  }
  void TearDown() override { ASSERT_TRUE(RemoveAll(root_).ok()); }

  std::string root_;
  LogicalClock clock_;
  CapturingSink sink_;
  std::unique_ptr<Vfs> vfs_;
  std::unique_ptr<SimOs> os_;
};

TEST_F(SimProcessTest, RootProcessAndSpawn) {
  ProcessContext* root = os_->root();
  EXPECT_EQ(root->pid(), 1);
  EXPECT_EQ(os_->root(), root);  // idempotent
  auto child = root->Spawn("halo-finder");
  ASSERT_TRUE(child.ok());
  EXPECT_EQ((*child)->pid(), 2);
  ASSERT_EQ(sink_.events.size(), 2u);
  EXPECT_EQ(sink_.events[0].kind, OsEvent::Kind::kProcessStart);
  EXPECT_EQ(sink_.events[0].parent_pid, 0);
  EXPECT_EQ(sink_.events[1].parent_pid, 1);
  EXPECT_EQ(sink_.events[1].label, "halo-finder");
  // Fork events are instantaneous points.
  EXPECT_EQ(sink_.events[1].t.begin, sink_.events[1].t.end);
}

TEST_F(SimProcessTest, FileEventsCarryIntervalsAndBytes) {
  ProcessContext* root = os_->root();
  ASSERT_TRUE(root->WriteFile("/in.txt", "abcdef").ok());
  auto data = root->ReadFile("/in.txt");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "abcdef");
  ASSERT_EQ(sink_.events.size(), 3u);  // start, write, read
  const OsEvent& write = sink_.events[1];
  const OsEvent& read = sink_.events[2];
  EXPECT_EQ(write.kind, OsEvent::Kind::kFileWrite);
  EXPECT_EQ(write.bytes, 6);
  EXPECT_LT(write.t.begin, write.t.end);
  EXPECT_EQ(read.kind, OsEvent::Kind::kFileRead);
  // Logical time is totally ordered across events.
  EXPECT_LT(write.t.end, read.t.begin);
}

TEST_F(SimProcessTest, ReadMissingFileFailsWithoutEvent) {
  EXPECT_FALSE(os_->root()->ReadFile("/missing.txt").ok());
  ASSERT_EQ(sink_.events.size(), 1u);  // only process start
}

TEST_F(SimProcessTest, ExitEmitsOnceAndBlocksSpawn) {
  ProcessContext* root = os_->root();
  root->Exit();
  root->Exit();  // idempotent
  int exits = 0;
  for (const OsEvent& e : sink_.events) {
    exits += e.kind == OsEvent::Kind::kProcessExit ? 1 : 0;
  }
  EXPECT_EQ(exits, 1);
  EXPECT_FALSE(root->Spawn().ok());
}

TEST(SystemPathTest, ClassifiesInfrastructureNoise) {
  EXPECT_TRUE(IsSystemPath("/proc/self/maps"));
  EXPECT_TRUE(IsSystemPath("/lib/x86_64-linux-gnu/libc.so.6"));
  EXPECT_TRUE(IsSystemPath("/usr/lib/locale/C.utf8"));
  EXPECT_FALSE(IsSystemPath("/home/alice/data.csv"));
  EXPECT_FALSE(IsSystemPath("/tmp/input.txt"));
}

TEST(PtraceTracerTest, TracesRealProcessTree) {
  auto dir = MakeTempDir("ldv_ptrace_");
  ASSERT_TRUE(dir.ok());
  std::string input = JoinPath(*dir, "input.txt");
  ASSERT_TRUE(WriteStringToFile(input, "traced content\n").ok());

  PtraceTracer tracer;
  auto report = tracer.Run({"/bin/cat", input});
  if (!report.ok()) {
    GTEST_SKIP() << "ptrace unavailable in this environment: "
                 << report.status().ToString();
  }
  EXPECT_EQ(report->exit_code, 0);
  bool saw_input = false;
  for (const std::string& path : report->files_read) {
    if (path == input) saw_input = true;
  }
  EXPECT_TRUE(saw_input) << "traced read set misses " << input;
  EXPECT_FALSE(report->events.empty());
  ASSERT_TRUE(RemoveAll(*dir).ok());
}

TEST(PtraceTracerTest, CapturesWritesAndForks) {
  auto dir = MakeTempDir("ldv_ptrace2_");
  ASSERT_TRUE(dir.ok());
  std::string out = JoinPath(*dir, "out.txt");
  PtraceTracer tracer;
  // `sh -c` forks a child that writes a file.
  auto report = tracer.Run({"/bin/sh", "-c", "echo hi > " + out});
  if (!report.ok()) {
    GTEST_SKIP() << "ptrace unavailable: " << report.status().ToString();
  }
  bool saw_write = false;
  for (const std::string& path : report->files_written) {
    if (path == out) saw_write = true;
  }
  EXPECT_TRUE(saw_write);
  EXPECT_TRUE(FileExists(out));
  ASSERT_TRUE(RemoveAll(*dir).ok());
}

TEST(PtraceTracerTest, EmptyArgvRejected) {
  PtraceTracer tracer;
  EXPECT_FALSE(tracer.Run({}).ok());
}

}  // namespace
}  // namespace ldv::os
