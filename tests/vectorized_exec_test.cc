#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/executor.h"
#include "exec/operators.h"
#include "obs/metrics.h"
#include "storage/database.h"
#include "util/rng.h"
#include "util/strings.h"

namespace ldv::exec {
namespace {

using storage::Database;
using storage::Value;

/// Vectorized-vs-row differential: the columnar kernels (DESIGN.md §15)
/// must return bit-identical results — row values, row order, lineage
/// sets, provenance tuples — to the row-at-a-time engine, at any degree of
/// parallelism. The serial row engine is the reference; every query runs
/// through both engines at dop 1 and 8.
class VectorizedExecTest : public ::testing::Test {
 protected:
  void SetUp() override { exec_ = std::make_unique<Executor>(&db_); }

  ResultSet Run(const std::string& sql, int threads, int vectorize) {
    ExecOptions options;
    options.threads = threads;
    options.vectorize = vectorize;
    options.query_id = ++next_query_id_;
    options.process_id = 7;
    auto result = exec_->Execute(sql, options);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? std::move(result).value() : ResultSet{};
  }

  static void ExpectSameResults(const ResultSet& got, const ResultSet& want,
                                const std::string& sql,
                                const std::string& what) {
    ASSERT_EQ(got.rows.size(), want.rows.size()) << sql << " [" << what << "]";
    EXPECT_EQ(got.Fingerprint(), want.Fingerprint())
        << sql << " [" << what << "]";
    for (size_t i = 0; i < want.rows.size(); ++i) {
      EXPECT_EQ(got.rows[i], want.rows[i])
          << sql << " [" << what << "] row " << i;
    }
    ASSERT_EQ(got.lineage.size(), want.lineage.size())
        << sql << " [" << what << "]";
    for (size_t i = 0; i < want.lineage.size(); ++i) {
      EXPECT_EQ(got.lineage[i], want.lineage[i])
          << sql << " [" << what << "] lineage of row " << i;
    }
    ASSERT_EQ(got.prov_tuples.size(), want.prov_tuples.size())
        << sql << " [" << what << "]";
    for (size_t i = 0; i < want.prov_tuples.size(); ++i) {
      EXPECT_TRUE(!(got.prov_tuples[i].vid < want.prov_tuples[i].vid) &&
                  !(want.prov_tuples[i].vid < got.prov_tuples[i].vid))
          << sql << " [" << what << "] prov tuple " << i;
      EXPECT_EQ(got.prov_tuples[i].values, want.prov_tuples[i].values)
          << sql << " [" << what << "] prov tuple " << i;
    }
  }

  /// The serial row engine is the reference; vectorized (dop 1 and 8) and
  /// the parallel row engine must all match it exactly.
  void ExpectEnginesIdentical(const std::string& sql) {
    ResultSet reference = Run(sql, 1, /*vectorize=*/-1);
    ExpectSameResults(Run(sql, 1, 1), reference, sql, "vectorized dop=1");
    ExpectSameResults(Run(sql, 8, 1), reference, sql, "vectorized dop=8");
    ExpectSameResults(Run(sql, 8, -1), reference, sql, "row dop=8");
  }

  /// `n` rows spanning several morsels; values repeat so joins / GROUP BY /
  /// DISTINCT have real work, and NULLs appear in both a numeric and a text
  /// column so the kernels' null paths are exercised everywhere.
  void FillItems(size_t n, uint64_t seed) {
    (void)Run("CREATE TABLE items (id INT, grp INT, val DOUBLE, tag TEXT)", 1,
              -1);
    Rng rng(seed);
    std::string insert;
    size_t pending = 0;
    for (size_t i = 0; i < n; ++i) {
      if (pending == 0) insert = "INSERT INTO items VALUES ";
      if (pending > 0) insert += ", ";
      std::string val = rng.Uniform(0, 10) == 0
                            ? "NULL"
                            : std::to_string(rng.Uniform(-500, 500)) + "." +
                                  std::to_string(rng.Uniform(0, 99));
      std::string tag = rng.Uniform(0, 13) == 0
                            ? "NULL"
                            : "'t" + std::to_string(rng.Uniform(0, 11)) + "'";
      insert += "(" + std::to_string(i) + ", " +
                std::to_string(rng.Uniform(0, 37)) + ", " + val + ", " + tag +
                ")";
      if (++pending == 512 || i + 1 == n) {
        (void)Run(insert, 1, -1);
        pending = 0;
      }
    }
  }

  void FillGroups() {
    (void)Run("CREATE TABLE grps (gid INT, name TEXT, weight DOUBLE)", 1, -1);
    std::string insert = "INSERT INTO grps VALUES ";
    for (int g = 0; g < 37; ++g) {
      if (g > 0) insert += ", ";
      insert += "(" + std::to_string(g) + ", 'g" + std::to_string(g % 7) +
                "', " + std::to_string(g) + ".5)";
    }
    (void)Run(insert, 1, -1);
  }

  Database db_;
  std::unique_ptr<Executor> exec_;
  int64_t next_query_id_ = 0;
};

TEST_F(VectorizedExecTest, ScanFilterProjectKernels) {
  FillItems(3 * kMorselRows + 517, /*seed=*/101);
  ExpectEnginesIdentical("SELECT id, val * 2, grp + 1 FROM items");
  ExpectEnginesIdentical("SELECT id FROM items WHERE grp < 19 AND val > 0");
  ExpectEnginesIdentical("SELECT id FROM items WHERE grp = 5 OR tag = 't3'");
  ExpectEnginesIdentical(
      "SELECT id, val FROM items WHERE val BETWEEN -100 AND 250.5");
  ExpectEnginesIdentical("SELECT id FROM items WHERE grp IN (1, 4, 9, 16)");
  ExpectEnginesIdentical("SELECT id, tag FROM items WHERE tag LIKE 't1%'");
  ExpectEnginesIdentical("SELECT id FROM items WHERE val IS NULL");
  ExpectEnginesIdentical("SELECT id FROM items WHERE NOT (tag IS NOT NULL)");
  ExpectEnginesIdentical("SELECT id, -val, grp - id FROM items WHERE grp >= 30");
}

TEST_F(VectorizedExecTest, NullAndZeroArithmeticSemantics) {
  FillItems(2 * kMorselRows, /*seed=*/202);
  // Division by zero and modulo by zero are NULL, never an error; NULL
  // operands propagate — the kernels must reproduce this exactly.
  ExpectEnginesIdentical("SELECT id, val / grp FROM items");
  ExpectEnginesIdentical("SELECT id, id % grp FROM items");
  ExpectEnginesIdentical("SELECT id, val + val, val / 0 FROM items");
  ExpectEnginesIdentical("SELECT id FROM items WHERE val / grp > 2");
  ExpectEnginesIdentical("SELECT id, val FROM items WHERE NOT (val > 0)");
}

TEST_F(VectorizedExecTest, JoinKernel) {
  FillItems(2 * kMorselRows + 91, /*seed=*/303);
  FillGroups();
  ExpectEnginesIdentical(
      "SELECT items.id, grps.name FROM items, grps WHERE items.grp = grps.gid");
  // Cross-type key (INT = DOUBLE): numeric coercion must match rows exactly.
  ExpectEnginesIdentical(
      "SELECT items.id FROM items, grps WHERE items.grp = grps.weight");
  // Multi-key join.
  ExpectEnginesIdentical(
      "SELECT a.id, b.id FROM items a, items b "
      "WHERE a.grp = b.grp AND a.tag = b.tag AND a.id < 200 AND b.id < 200");
  // LEFT JOIN and residual predicates take the row fallback; results must
  // still agree.
  ExpectEnginesIdentical(
      "SELECT items.id, grps.name FROM items LEFT JOIN grps "
      "ON items.grp = grps.gid AND grps.gid < 10 WHERE items.id < 300");
}

TEST_F(VectorizedExecTest, AggregateKernel) {
  FillItems(3 * kMorselRows + 33, /*seed=*/404);
  ExpectEnginesIdentical("SELECT count(*) FROM items");
  ExpectEnginesIdentical(
      "SELECT grp, count(*), count(val), sum(val), avg(val), min(val), "
      "max(val) FROM items GROUP BY grp");
  ExpectEnginesIdentical(
      "SELECT tag, min(tag), max(tag) FROM items GROUP BY tag");
  ExpectEnginesIdentical(
      "SELECT grp, sum(id) FROM items GROUP BY grp HAVING sum(id) > 100000");
  ExpectEnginesIdentical("SELECT sum(val) FROM items WHERE grp > 100");
  ExpectEnginesIdentical(
      "SELECT grp % 5, sum(val + 1) FROM items GROUP BY grp % 5");
}

TEST_F(VectorizedExecTest, DistinctKernel) {
  FillItems(2 * kMorselRows + 7, /*seed=*/505);
  ExpectEnginesIdentical("SELECT DISTINCT grp FROM items");
  ExpectEnginesIdentical("SELECT DISTINCT grp, tag FROM items");
  ExpectEnginesIdentical("SELECT DISTINCT val FROM items WHERE grp = 3");
}

TEST_F(VectorizedExecTest, OrderByRunsOverVectorizedChildren) {
  FillItems(2 * kMorselRows + 111, /*seed=*/606);
  ExpectEnginesIdentical("SELECT id, grp FROM items ORDER BY grp, id DESC");
  ExpectEnginesIdentical(
      "SELECT id, val FROM items WHERE grp < 12 ORDER BY val LIMIT 57");
  ExpectEnginesIdentical("SELECT grp, count(*) FROM items GROUP BY grp "
                         "ORDER BY 2 DESC, 1 LIMIT 5");
}

TEST_F(VectorizedExecTest, LimitStopsAtMorselBoundary) {
  FillItems(4 * kMorselRows, /*seed=*/707);
  // LIMIT without ORDER BY pushes a stop hint into the scan; both engines
  // must emit the same whole-morsel-prefix truncation.
  ExpectEnginesIdentical("SELECT id FROM items LIMIT 5");
  ExpectEnginesIdentical("SELECT id, tag FROM items WHERE grp = 9 LIMIT 10");
  ExpectEnginesIdentical("SELECT id FROM items LIMIT 0");
  // A limit larger than the table.
  ExpectEnginesIdentical("SELECT id FROM items LIMIT 999999");
  // Lineage-tracked scans must ignore the hint (they stamp every row they
  // read): provenance output must equal the row engine's.
  ExpectEnginesIdentical("PROVENANCE SELECT id FROM items LIMIT 5");
}

TEST_F(VectorizedExecTest, LineageAndProvenance) {
  FillItems(2 * kMorselRows + 201, /*seed=*/808);
  FillGroups();
  ExpectEnginesIdentical("PROVENANCE SELECT id FROM items WHERE grp = 5");
  ExpectEnginesIdentical(
      "PROVENANCE SELECT grp, sum(val) FROM items WHERE val > 0 GROUP BY grp");
  ExpectEnginesIdentical("PROVENANCE SELECT DISTINCT tag FROM items");
  ExpectEnginesIdentical(
      "PROVENANCE SELECT items.id, grps.name FROM items, grps "
      "WHERE items.grp = grps.gid AND items.id < 500");
}

TEST_F(VectorizedExecTest, IndexProbeFallsBackToRowPath) {
  FillItems(2 * kMorselRows, /*seed=*/909);
  (void)Run("CREATE INDEX idx_items_grp ON items (grp)", 1, -1);
  ExpectEnginesIdentical("SELECT id, val FROM items WHERE grp = 17");
  ExpectEnginesIdentical("PROVENANCE SELECT id FROM items WHERE grp = 17");
}

TEST_F(VectorizedExecTest, RandomizedDifferentialFuzz) {
  FillItems(3 * kMorselRows + 977, /*seed=*/42);
  FillGroups();
  const std::vector<std::string> filters = {
      "",
      " WHERE grp < 20",
      " WHERE val > 0 AND grp % 3 = 1",
      " WHERE tag LIKE 't%' OR val IS NULL",
      " WHERE val BETWEEN -50 AND 300 AND id % 7 != 2",
      " WHERE grp IN (2, 3, 5, 7, 11, 13) AND NOT (val < 0)",
  };
  Rng rng(1234);
  for (int round = 0; round < 24; ++round) {
    const std::string& filter = filters[rng.Uniform(0, filters.size() - 1)];
    switch (rng.Uniform(0, 4)) {
      case 0:
        ExpectEnginesIdentical("SELECT id, val, grp * 2 FROM items" + filter);
        break;
      case 1:
        ExpectEnginesIdentical("SELECT grp, count(*), sum(val), min(tag) "
                               "FROM items" +
                               filter + " GROUP BY grp");
        break;
      case 2:
        ExpectEnginesIdentical("SELECT DISTINCT grp, tag FROM items" + filter);
        break;
      case 3:
        ExpectEnginesIdentical(
            "SELECT items.id, grps.name FROM items, grps "
            "WHERE items.grp = grps.gid" +
            (filter.empty() ? "" : " AND" + filter.substr(6)));
        break;
      case 4:
        ExpectEnginesIdentical("PROVENANCE SELECT id, tag FROM items" +
                               filter);
        break;
    }
  }
}

TEST_F(VectorizedExecTest, ExplainAnalyzeShowsBatchesAndRate) {
  FillItems(2 * kMorselRows, /*seed=*/111);
  ResultSet vec = Run("EXPLAIN ANALYZE SELECT id FROM items WHERE grp < 9", 1,
                      /*vectorize=*/1);
  std::string vec_text;
  for (const auto& row : vec.rows) vec_text += row[0].AsString() + "\n";
  EXPECT_NE(vec_text.find("[vectorized]"), std::string::npos) << vec_text;
  EXPECT_NE(vec_text.find("batches="), std::string::npos) << vec_text;
  EXPECT_NE(vec_text.find("rate="), std::string::npos) << vec_text;

  // ORDER BY has no columnar sort kernel: the SortLimit node reports itself
  // as a row fallback while the scan below it stays vectorized.
  ResultSet sorted = Run(
      "EXPLAIN ANALYZE SELECT id, val FROM items ORDER BY val LIMIT 3", 1, 1);
  std::string sorted_text;
  for (const auto& row : sorted.rows) sorted_text += row[0].AsString() + "\n";
  EXPECT_NE(sorted_text.find("[row-fallback]"), std::string::npos)
      << sorted_text;
  EXPECT_NE(sorted_text.find("[vectorized]"), std::string::npos) << sorted_text;

  // The row engine reports neither marker.
  ResultSet row = Run("EXPLAIN ANALYZE SELECT id FROM items WHERE grp < 9", 1,
                      /*vectorize=*/-1);
  std::string row_text;
  for (const auto& r : row.rows) row_text += r[0].AsString() + "\n";
  EXPECT_EQ(row_text.find("[vectorized]"), std::string::npos) << row_text;
  EXPECT_EQ(row_text.find("batches="), std::string::npos) << row_text;
}

TEST_F(VectorizedExecTest, MetricsCountQueriesBatchesAndFallbacks) {
  FillItems(2 * kMorselRows, /*seed=*/222);
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter* queries = registry.counter("exec.vectorized.queries");
  obs::Counter* batches = registry.counter("exec.vectorized.batches");
  obs::Counter* fallbacks = registry.counter("exec.vectorized.fallbacks");

  const int64_t q0 = queries->Value();
  const int64_t b0 = batches->Value();
  (void)Run("SELECT id FROM items WHERE grp < 9", 1, 1);
  EXPECT_EQ(queries->Value(), q0 + 1);
  EXPECT_GT(batches->Value(), b0);

  const int64_t f0 = fallbacks->Value();
  (void)Run("SELECT id, val FROM items ORDER BY val LIMIT 3", 1, 1);
  EXPECT_GT(fallbacks->Value(), f0);  // the SortLimit node

  // The row engine never touches the vectorized counters.
  const int64_t q1 = queries->Value();
  (void)Run("SELECT id FROM items WHERE grp < 9", 1, -1);
  EXPECT_EQ(queries->Value(), q1);
}

TEST_F(VectorizedExecTest, DefaultVectorizeToggle) {
  FillItems(kMorselRows, /*seed=*/333);
  ASSERT_TRUE(DefaultVectorize());
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter* queries = registry.counter("exec.vectorized.queries");

  SetDefaultVectorize(false);
  const int64_t q0 = queries->Value();
  ResultSet off = Run("SELECT count(*) FROM items", 1, /*vectorize=*/0);
  EXPECT_EQ(queries->Value(), q0);  // default off, tri-state 0 follows it

  SetDefaultVectorize(true);
  ResultSet on = Run("SELECT count(*) FROM items", 1, /*vectorize=*/0);
  EXPECT_EQ(queries->Value(), q0 + 1);
  EXPECT_EQ(on.Fingerprint(), off.Fingerprint());
}

}  // namespace
}  // namespace ldv::exec
