// Prepared statements and the shared plan cache (DESIGN.md §13): handle
// lifecycle, statement-text normalization, schema-version invalidation
// (DDL / COPY evict cached plans; a handle prepared before DDL replans),
// parameter-binding edge cases, and the interplay between EXECUTE and the
// server's (pid, qid) response-dedup cache.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/fault.h"
#include "exec/plan_cache.h"
#include "net/db_client.h"
#include "net/db_server.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "storage/database.h"
#include "util/fsutil.h"
#include "util/strings.h"

namespace ldv::net {
namespace {

using storage::Database;
using storage::Value;

Result<exec::ResultSet> Exec(EngineHandle* engine, const std::string& sql,
                             int64_t session = EngineHandle::kLocalSession) {
  DbRequest request;
  request.sql = sql;
  return engine->ExecuteSession(request, session);
}

int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().counter(name)->Value();
}

class PreparedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<EngineHandle>(&db_);
    ASSERT_TRUE(Exec(engine_.get(), "CREATE TABLE t (id INT, val INT)").ok());
    ASSERT_TRUE(
        Exec(engine_.get(), "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
            .ok());
  }

  Database db_;
  std::unique_ptr<EngineHandle> engine_;
};

// ---------------------------------------------------------------------------
// Handle lifecycle
// ---------------------------------------------------------------------------

TEST_F(PreparedTest, PrepareExecuteDeallocateRoundTrip) {
  ASSERT_TRUE(
      Exec(engine_.get(), "PREPARE q AS SELECT val FROM t WHERE id = ?").ok());
  auto result = Exec(engine_.get(), "EXECUTE q (2)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsInt(), 20);
  ASSERT_TRUE(Exec(engine_.get(), "DEALLOCATE q").ok());
  EXPECT_FALSE(Exec(engine_.get(), "EXECUTE q (2)").ok());
}

TEST_F(PreparedTest, DuplicateNameIsRejectedAndNamesAreCaseInsensitive) {
  ASSERT_TRUE(Exec(engine_.get(), "PREPARE q AS SELECT 1").ok());
  Result<exec::ResultSet> dup =
      Exec(engine_.get(), "PREPARE Q AS SELECT 2");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  // EXECUTE resolves the name case-insensitively.
  EXPECT_TRUE(Exec(engine_.get(), "EXECUTE Q").ok());
  ASSERT_TRUE(Exec(engine_.get(), "DEALLOCATE PREPARE q").ok());
}

TEST_F(PreparedTest, DeallocateAllDropsEverySessionHandle) {
  ASSERT_TRUE(Exec(engine_.get(), "PREPARE a AS SELECT 1").ok());
  ASSERT_TRUE(Exec(engine_.get(), "PREPARE b AS SELECT 2").ok());
  ASSERT_TRUE(Exec(engine_.get(), "DEALLOCATE ALL").ok());
  EXPECT_FALSE(Exec(engine_.get(), "EXECUTE a").ok());
  EXPECT_FALSE(Exec(engine_.get(), "EXECUTE b").ok());
}

TEST_F(PreparedTest, HandlesAreSessionScoped) {
  ASSERT_TRUE(Exec(engine_.get(), "PREPARE q AS SELECT 1", 7).ok());
  Result<exec::ResultSet> other = Exec(engine_.get(), "EXECUTE q", 8);
  ASSERT_FALSE(other.ok());
  EXPECT_EQ(other.status().code(), StatusCode::kNotFound);
  // Session teardown drops the handles.
  engine_->AbortSession(7);
  EXPECT_FALSE(Exec(engine_.get(), "EXECUTE q", 7).ok());
}

TEST_F(PreparedTest, PrepareRejectsDdlAndExplainBodies) {
  EXPECT_FALSE(
      Exec(engine_.get(), "PREPARE d AS CREATE TABLE u (x INT)").ok());
  EXPECT_FALSE(Exec(engine_.get(), "PREPARE d AS DROP TABLE t").ok());
  EXPECT_FALSE(
      Exec(engine_.get(), "PREPARE e AS EXPLAIN SELECT * FROM t").ok());
}

TEST_F(PreparedTest, PreparedDmlWritesTheSubstitutedTextToTheWal) {
  auto dir = MakeTempDir("prepared_wal");
  ASSERT_TRUE(dir.ok());
  storage::WalOptions wal_options;
  wal_options.sync_mode = storage::WalSyncMode::kNone;
  auto wal = storage::Wal::Open(*dir, wal_options, 1);
  ASSERT_TRUE(wal.ok());
  engine_->AttachWal(std::move(*wal), EngineDurabilityOptions{});

  ASSERT_TRUE(
      Exec(engine_.get(), "PREPARE ins AS INSERT INTO t VALUES (?, ?)").ok());
  ASSERT_TRUE(Exec(engine_.get(), "EXECUTE ins (9, 90)").ok());
  ASSERT_TRUE(engine_->FlushWal().ok());

  // The logged statement is the rendered text with the values inlined — a
  // redo pass needs no parameter context.
  auto segments = storage::ListWalSegments(*dir);
  ASSERT_TRUE(segments.ok());
  bool found = false;
  for (const std::string& name : *segments) {
    auto bytes = ReadFileToString(JoinPath(*dir, name));
    if (bytes.ok() &&
        bytes->find("INSERT INTO t VALUES (9, 90)") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  (void)RemoveAll(*dir);
}

// ---------------------------------------------------------------------------
// Normalization & cache sharing
// ---------------------------------------------------------------------------

TEST(NormalizeTest, EquivalentTextsShareOneKey) {
  const std::string a = exec::NormalizeStatementText(
      "SELECT  id ,  val FROM t WHERE id < ?");
  const std::string b = exec::NormalizeStatementText(
      "select id, val from T where ID < $1");
  EXPECT_EQ(a, b);
  // String literals stay case-sensitive; identifiers do not.
  EXPECT_NE(exec::NormalizeStatementText("SELECT 'ABC'"),
            exec::NormalizeStatementText("SELECT 'abc'"));
  EXPECT_EQ(exec::NormalizeStatementText("SELECT X"),
            exec::NormalizeStatementText("select x"));
  // Distinct placeholders keep distinct positions.
  EXPECT_NE(exec::NormalizeStatementText("SELECT $1, $2"),
            exec::NormalizeStatementText("SELECT $2, $1"));
}

TEST_F(PreparedTest, EquivalentPreparesShareOnePlanCacheEntry) {
  exec::PlanCache& cache = exec::PlanCache::Global();
  const size_t entries_before = cache.entries();
  const int64_t hits_before = CounterValue("plan_cache.hit");
  ASSERT_TRUE(
      Exec(engine_.get(), "PREPARE a AS SELECT val FROM t WHERE id < ?", 1)
          .ok());
  ASSERT_TRUE(
      Exec(engine_.get(), "prepare b as select VAL from T where ID < $1", 2)
          .ok());
  EXPECT_EQ(cache.entries(), entries_before + 1);
  ASSERT_TRUE(Exec(engine_.get(), "EXECUTE a (3)", 1).ok());
  // The second session's first EXECUTE reuses the plan the first built.
  ASSERT_TRUE(Exec(engine_.get(), "EXECUTE b (3)", 2).ok());
  EXPECT_GT(CounterValue("plan_cache.hit"), hits_before);
}

TEST_F(PreparedTest, CapacityZeroDisablesCachingAndCapacityBoundsEntries) {
  exec::PlanCache& cache = exec::PlanCache::Global();
  cache.Clear();
  cache.set_capacity(0);
  ASSERT_TRUE(
      Exec(engine_.get(), "PREPARE q AS SELECT val FROM t WHERE id < ?").ok());
  ASSERT_TRUE(Exec(engine_.get(), "EXECUTE q (3)").ok());
  EXPECT_EQ(cache.entries(), 0u);
  ASSERT_TRUE(Exec(engine_.get(), "DEALLOCATE q").ok());

  cache.set_capacity(2);
  const int64_t evictions_before = CounterValue("plan_cache.evict");
  for (int i = 0; i < 4; ++i) {
    const std::string name = "q" + std::to_string(i);
    ASSERT_TRUE(Exec(engine_.get(),
                     "PREPARE " + name + " AS SELECT val FROM t WHERE id < ? "
                     "AND val < " + std::to_string(100 + i))
                    .ok());
    ASSERT_TRUE(Exec(engine_.get(), "EXECUTE " + name + " (3)").ok());
  }
  EXPECT_LE(cache.entries(), 2u);
  EXPECT_GT(CounterValue("plan_cache.evict"), evictions_before);
  cache.set_capacity(256);
  cache.Clear();
}

// ---------------------------------------------------------------------------
// Invalidation: DDL / COPY bump the schema version
// ---------------------------------------------------------------------------

TEST_F(PreparedTest, HandlePreparedBeforeAlterReplansAndSeesTheNewColumn) {
  const int64_t stale_before = CounterValue("plan_cache.stale");
  ASSERT_TRUE(
      Exec(engine_.get(), "PREPARE q AS SELECT * FROM t WHERE id = ?").ok());
  auto before = Exec(engine_.get(), "EXECUTE q (1)");
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->rows[0].size(), 2u);

  ASSERT_TRUE(Exec(engine_.get(), "ALTER TABLE t ADD COLUMN extra INT").ok());
  auto after = Exec(engine_.get(), "EXECUTE q (1)");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  // The cached plan was built against the old catalog; the version bump
  // forced a replan, so SELECT * now yields the new column.
  ASSERT_EQ(after->rows[0].size(), 3u);
  EXPECT_GT(CounterValue("plan_cache.stale"), stale_before);
}

TEST_F(PreparedTest, CreateAndDropTableInvalidateAffectedPlans) {
  ASSERT_TRUE(
      Exec(engine_.get(), "PREPARE q AS SELECT val FROM t WHERE id = ?").ok());
  ASSERT_TRUE(Exec(engine_.get(), "EXECUTE q (1)").ok());
  // An unrelated CREATE TABLE bumps the version: the entry is restamped and
  // the EXECUTE still succeeds (replanned, not poisoned).
  ASSERT_TRUE(Exec(engine_.get(), "CREATE TABLE other (x INT)").ok());
  EXPECT_TRUE(Exec(engine_.get(), "EXECUTE q (1)").ok());
  // Dropping the referenced table: the replan fails loudly, not silently.
  ASSERT_TRUE(Exec(engine_.get(), "DROP TABLE t").ok());
  Result<exec::ResultSet> gone = Exec(engine_.get(), "EXECUTE q (1)");
  ASSERT_FALSE(gone.ok());
  EXPECT_NE(gone.status().message().find("t"), std::string::npos);
}

TEST_F(PreparedTest, CopyBumpsTheSchemaVersionAndNewRowsAreVisible) {
  auto dir = MakeTempDir("prepared_copy");
  ASSERT_TRUE(dir.ok());
  const std::string csv = JoinPath(*dir, "rows.csv");
  ASSERT_TRUE(WriteStringToFile(csv, "7,70\n8,80\n").ok());

  const uint64_t version_before = db_.schema_version();
  ASSERT_TRUE(
      Exec(engine_.get(), "PREPARE q AS SELECT count(*) FROM t WHERE val > ?")
          .ok());
  auto before = Exec(engine_.get(), "EXECUTE q (0)");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rows[0][0].AsInt(), 3);

  ASSERT_TRUE(Exec(engine_.get(), "COPY t FROM '" + csv + "'").ok());
  EXPECT_GT(db_.schema_version(), version_before);
  auto after = Exec(engine_.get(), "EXECUTE q (0)");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows[0][0].AsInt(), 5);
  (void)RemoveAll(*dir);
}

TEST_F(PreparedTest, StaleFaultPointForcesReplanning) {
  FaultInjector& injector = FaultInjector::Instance();
  ASSERT_TRUE(injector.ConfigureFromSpec("plancache.stale=p:1.0").ok());
  injector.Enable(1);
  const int64_t stale_before = CounterValue("plan_cache.stale");
  ASSERT_TRUE(
      Exec(engine_.get(), "PREPARE q AS SELECT val FROM t WHERE id = ?").ok());
  ASSERT_TRUE(Exec(engine_.get(), "EXECUTE q (1)").ok());
  ASSERT_TRUE(Exec(engine_.get(), "EXECUTE q (2)").ok());
  // Every lookup was forced down the stale path and replanned; results stay
  // correct throughout.
  EXPECT_GE(CounterValue("plan_cache.stale") - stale_before, 1);
  injector.Reset();
}

// ---------------------------------------------------------------------------
// Parameter-binding edges
// ---------------------------------------------------------------------------

TEST_F(PreparedTest, NullParameterBehavesLikeNullLiteral) {
  ASSERT_TRUE(
      Exec(engine_.get(), "PREPARE q AS SELECT count(*) FROM t WHERE id = ?")
          .ok());
  auto bound = Exec(engine_.get(), "EXECUTE q (NULL)");
  auto direct = Exec(engine_.get(), "SELECT count(*) FROM t WHERE id = NULL");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(bound->rows[0][0].AsInt(), direct->rows[0][0].AsInt());
}

TEST_F(PreparedTest, IntAndDoubleParametersCompareLikeLiterals) {
  ASSERT_TRUE(Exec(engine_.get(),
                   "PREPARE q AS SELECT count(*) FROM t WHERE val > ?")
                  .ok());
  auto via_int = Exec(engine_.get(), "EXECUTE q (15)");
  auto via_double = Exec(engine_.get(), "EXECUTE q (15.0)");
  ASSERT_TRUE(via_int.ok());
  ASSERT_TRUE(via_double.ok());
  EXPECT_EQ(via_int->rows[0][0].AsInt(), 2);
  EXPECT_EQ(via_double->rows[0][0].AsInt(), 2);
}

TEST_F(PreparedTest, StringParameterAgainstIntColumnFailsCleanly) {
  ASSERT_TRUE(
      Exec(engine_.get(), "PREPARE q AS SELECT count(*) FROM t WHERE val > ?")
          .ok());
  Result<exec::ResultSet> mismatch = Exec(engine_.get(), "EXECUTE q ('x')");
  Result<exec::ResultSet> direct =
      Exec(engine_.get(), "SELECT count(*) FROM t WHERE val > 'x'");
  // No silent coercion: the bound string fails exactly like the literal.
  EXPECT_EQ(mismatch.ok(), direct.ok());
}

TEST_F(PreparedTest, ArityMismatchIsRejected) {
  ASSERT_TRUE(Exec(engine_.get(),
                   "PREPARE q AS SELECT val FROM t WHERE id = ? AND val > ?")
                  .ok());
  Result<exec::ResultSet> too_few = Exec(engine_.get(), "EXECUTE q (1)");
  ASSERT_FALSE(too_few.ok());
  EXPECT_EQ(too_few.status().code(), StatusCode::kInvalidArgument);
  Result<exec::ResultSet> too_many = Exec(engine_.get(), "EXECUTE q (1, 2, 3)");
  ASSERT_FALSE(too_many.ok());
  EXPECT_TRUE(Exec(engine_.get(), "EXECUTE q (1, 15)").ok());
}

TEST_F(PreparedTest, ExecuteOfUnknownHandleReturnsNotFound) {
  Result<exec::ResultSet> unknown = Exec(engine_.get(), "EXECUTE nope (1)");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  EXPECT_NE(unknown.status().message().find("nope"), std::string::npos);
}

TEST_F(PreparedTest, ExecuteArgumentsMustBeConstantExpressions) {
  ASSERT_TRUE(
      Exec(engine_.get(), "PREPARE q AS SELECT val FROM t WHERE id = ?").ok());
  // Arithmetic over constants is fine; a placeholder inside the argument
  // list is rejected by the parser.
  EXPECT_TRUE(Exec(engine_.get(), "EXECUTE q (1 + 1)").ok());
  EXPECT_FALSE(Exec(engine_.get(), "EXECUTE q (?)").ok());
  EXPECT_FALSE(Exec(engine_.get(), "EXECUTE q (val)").ok());
}

TEST_F(PreparedTest, ParameterInOrderByTakesTheSubstitutionPath) {
  // A bare placeholder as an ORDER BY item would be an ordinal when inlined
  // as a literal; the statement must behave exactly like its inlined form.
  ASSERT_TRUE(
      Exec(engine_.get(), "PREPARE q AS SELECT id, val FROM t ORDER BY ?")
          .ok());
  auto bound = Exec(engine_.get(), "EXECUTE q (2)");
  auto direct = Exec(engine_.get(), "SELECT id, val FROM t ORDER BY 2");
  ASSERT_EQ(bound.ok(), direct.ok());
  if (bound.ok()) {
    ASSERT_EQ(bound->rows.size(), direct->rows.size());
    for (size_t i = 0; i < bound->rows.size(); ++i) {
      EXPECT_EQ(bound->rows[i], direct->rows[i]);
    }
  }
}

TEST_F(PreparedTest, ExecuteInsideTransactionSeesUncommittedWrites) {
  ASSERT_TRUE(
      Exec(engine_.get(), "PREPARE q AS SELECT count(*) FROM t WHERE id > ?")
          .ok());
  ASSERT_TRUE(Exec(engine_.get(), "BEGIN").ok());
  ASSERT_TRUE(Exec(engine_.get(), "INSERT INTO t VALUES (99, 990)").ok());
  // In-transaction EXECUTE must not take the snapshot read path: the owner
  // sees its own uncommitted row.
  auto in_txn = Exec(engine_.get(), "EXECUTE q (0)");
  ASSERT_TRUE(in_txn.ok()) << in_txn.status().ToString();
  EXPECT_EQ(in_txn->rows[0][0].AsInt(), 4);
  ASSERT_TRUE(Exec(engine_.get(), "ROLLBACK").ok());
  auto after = Exec(engine_.get(), "EXECUTE q (0)");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows[0][0].AsInt(), 3);
}

// ---------------------------------------------------------------------------
// Protocol verbs + retry interplay with the response-dedup cache
// ---------------------------------------------------------------------------

class PreparedSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("prepared_socket");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)RemoveAll(dir_); }

  std::string dir_;
};

TEST_F(PreparedSocketTest, ProtocolVerbsRoundTripOverTheSocket) {
  Database db;
  EngineHandle engine(&db);
  ASSERT_TRUE(Exec(&engine, "CREATE TABLE t (id INT, val INT)").ok());
  ASSERT_TRUE(Exec(&engine, "INSERT INTO t VALUES (1, 10), (2, 20)").ok());

  const std::string path = dir_ + "/db.sock";
  DbServer server(&engine, path, DbServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = SocketDbClient::Connect(path);
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(PrepareStatement(client->get(), "sel",
                               "SELECT val FROM t WHERE id = ?")
                  .ok());
  auto result = ExecutePrepared(client->get(), "sel", {Value::Int(2)});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsInt(), 20);
  ASSERT_TRUE(DeallocatePrepared(client->get(), "sel").ok());
  EXPECT_FALSE(ExecutePrepared(client->get(), "sel", {Value::Int(2)}).ok());
  server.Stop();
}

TEST_F(PreparedSocketTest, RetriedExecuteHitsTheDedupCache) {
  Database db;
  EngineHandle engine(&db);
  ASSERT_TRUE(Exec(&engine, "CREATE TABLE t (id INT)").ok());

  const std::string path = dir_ + "/db.sock";
  DbServerOptions options;
  options.dedup_capacity = 16;
  DbServer server(&engine, path, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = SocketDbClient::Connect(path);
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(
      PrepareStatement(client->get(), "ins", "INSERT INTO t VALUES (?)").ok());
  // Same (pid, qid): the retry is answered from the dedup cache with an
  // identical payload, and the insert happens exactly once.
  auto first =
      ExecutePrepared(client->get(), "ins", {Value::Int(1)}, /*process_id=*/5,
                      /*query_id=*/100);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->affected, 1);
  auto retry =
      ExecutePrepared(client->get(), "ins", {Value::Int(1)}, 5, 100);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->affected, first->affected);
  EXPECT_EQ(server.deduped_requests(), 1);

  // A different binding under the same pid with a fresh qid is NOT deduped
  // against the first — the parameters are folded into the dedup key, so it
  // executes (same handle, same shape, different values).
  auto other =
      ExecutePrepared(client->get(), "ins", {Value::Int(2)}, 5, 101);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(server.deduped_requests(), 1);

  auto count = Exec(&engine, "SELECT count(*) FROM t");
  server.Stop();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), 2);
}

TEST_F(PreparedSocketTest, ServerStatsExposePlanCacheMetrics) {
  Database db;
  EngineHandle engine(&db);
  ASSERT_TRUE(Exec(&engine, "CREATE TABLE t (id INT)").ok());
  ASSERT_TRUE(Exec(&engine, "INSERT INTO t VALUES (1)").ok());

  const std::string path = dir_ + "/db.sock";
  DbServer server(&engine, path, DbServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = SocketDbClient::Connect(path);
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(PrepareStatement(client->get(), "q",
                               "SELECT id FROM t WHERE id = ?")
                  .ok());
  ASSERT_TRUE(ExecutePrepared(client->get(), "q", {Value::Int(1)}).ok());
  ASSERT_TRUE(ExecutePrepared(client->get(), "q", {Value::Int(1)}).ok());

  auto stats = FetchServerStats(client->get());
  server.Stop();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const std::string dump = stats->Dump();
  EXPECT_NE(dump.find("plan_cache.entries"), std::string::npos);
  EXPECT_NE(dump.find("plan_cache.hit"), std::string::npos);
}

}  // namespace
}  // namespace ldv::net
