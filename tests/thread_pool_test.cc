#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace ldv {
namespace {

TEST(ThreadPoolTest, EmptyBatchIsOk) {
  ThreadPool pool(4);
  EXPECT_TRUE(pool.RunTasks({}).ok());
  EXPECT_TRUE(pool.ParallelFor(0, 16, [](size_t, size_t, size_t) {
                    return Status::Ok();
                  }).ok());
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kTasks = 64;
  std::vector<std::atomic<int>> hits(kTasks);
  std::vector<std::function<Status()>> tasks;
  tasks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back([&hits, i] {
      hits[static_cast<size_t>(i)].fetch_add(1);
      return Status::Ok();
    });
  }
  ASSERT_TRUE(pool.RunTasks(std::move(tasks)).ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversRangeWithFixedChunks) {
  ThreadPool pool(3);
  constexpr size_t kN = 10000;
  constexpr size_t kChunk = 128;
  std::vector<std::atomic<int>> hits(kN);
  std::mutex mu;
  std::set<size_t> chunk_indexes;
  Status status = pool.ParallelFor(
      kN, kChunk, [&](size_t begin, size_t end, size_t chunk) {
        // Boundaries must be a pure function of (n, chunk size).
        EXPECT_EQ(begin, chunk * kChunk);
        EXPECT_EQ(end, std::min(kN, begin + kChunk));
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
        std::lock_guard<std::mutex> lock(mu);
        chunk_indexes.insert(chunk);
        return Status::Ok();
      });
  ASSERT_TRUE(status.ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(chunk_indexes.size(), (kN + kChunk - 1) / kChunk);
}

TEST(ThreadPoolTest, ReportsLowestIndexedFailure) {
  ThreadPool pool(4);
  // Every task runs (batch semantics); the reported Status is task 3's —
  // the one a serial left-to-right loop would have hit first.
  std::atomic<int> ran{0};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([&ran, i]() -> Status {
      ran.fetch_add(1);
      if (i == 3) return Status::InvalidArgument("task three");
      if (i == 11) return Status::Internal("task eleven");
      return Status::Ok();
    });
  }
  Status status = pool.RunTasks(std::move(tasks));
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("task three"), std::string::npos)
      << status.ToString();
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, ExceptionBecomesInternalStatus) {
  ThreadPool pool(2);
  std::vector<std::function<Status()>> tasks;
  tasks.push_back([] { return Status::Ok(); });
  tasks.push_back([]() -> Status { throw std::runtime_error("boom"); });
  Status status = pool.RunTasks(std::move(tasks));
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("boom"), std::string::npos);
}

TEST(ThreadPoolTest, UsableAfterFailedBatch) {
  ThreadPool pool(2);
  std::vector<std::function<Status()>> bad;
  bad.push_back([]() -> Status { return Status::Internal("first"); });
  bad.push_back([]() -> Status { throw 42; });  // non-exception object
  EXPECT_FALSE(pool.RunTasks(std::move(bad)).ok());

  std::atomic<int> sum{0};
  std::vector<std::function<Status()>> good;
  for (int i = 1; i <= 10; ++i) {
    good.push_back([&sum, i] {
      sum.fetch_add(i);
      return Status::Ok();
    });
  }
  EXPECT_TRUE(pool.RunTasks(std::move(good)).ok());
  EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPoolTest, MaxConcurrencyOneRunsInline) {
  ThreadPool pool(4);
  // With a cap of 1 only the submitting thread executes, in order.
  std::vector<int> order;  // unsynchronized on purpose: single thread
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([&order, i] {
      order.push_back(i);
      return Status::Ok();
    });
  }
  ASSERT_TRUE(pool.RunTasks(std::move(tasks), /*max_concurrency=*/1).ok());
  std::vector<int> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ConcurrencyCapIsRespected) {
  ThreadPool pool(8);
  constexpr int kCap = 3;
  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&] {
      int now = active.fetch_add(1) + 1;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      // Give other workers a chance to pile in if the cap were broken.
      std::this_thread::yield();
      active.fetch_sub(1);
      return Status::Ok();
    });
  }
  ASSERT_TRUE(pool.RunTasks(std::move(tasks), kCap).ok());
  EXPECT_LE(peak.load(), kCap);
  EXPECT_GE(peak.load(), 1);
}

TEST(ThreadPoolTest, ConcurrentSubmittersShareThePool) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 6;
  std::atomic<int64_t> total{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &total] {
      Status status = pool.ParallelFor(
          1000, 64, [&total](size_t begin, size_t end, size_t) {
            total.fetch_add(static_cast<int64_t>(end - begin));
            return Status::Ok();
          });
      EXPECT_TRUE(status.ok());
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(total.load(), kSubmitters * 1000);
}

TEST(ThreadPoolTest, DefaultDopOverride) {
  int original = ThreadPool::default_dop();
  ThreadPool::SetDefaultDop(3);
  EXPECT_EQ(ThreadPool::default_dop(), 3);
  EXPECT_EQ(ThreadPool::Shared()->num_threads(), 3);
  ThreadPool::SetDefaultDop(0);  // back to hardware concurrency
  EXPECT_GE(ThreadPool::default_dop(), 1);
  ThreadPool::SetDefaultDop(original);
}

}  // namespace
}  // namespace ldv
