#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "trace/inference.h"
#include "util/rng.h"

namespace ldv::trace {
namespace {

/// Figure 6 of the paper: chain A -> P1 -> B -> P2 -> C with varying
/// temporal annotations.
struct ChainTrace {
  TraceGraph g;
  NodeId a, p1, b, p2, c;
};

ChainTrace MakeChain(os::Interval a_p1, os::Interval p1_b, os::Interval b_p2,
                     os::Interval p2_c) {
  ChainTrace t;
  t.a = t.g.GetOrAddNode(NodeType::kFile, "A");
  t.p1 = t.g.GetOrAddNode(NodeType::kProcess, "P1");
  t.b = t.g.GetOrAddNode(NodeType::kFile, "B");
  t.p2 = t.g.GetOrAddNode(NodeType::kProcess, "P2");
  t.c = t.g.GetOrAddNode(NodeType::kFile, "C");
  EXPECT_TRUE(t.g.AddEdge(t.a, t.p1, EdgeType::kReadFrom, a_p1).ok());
  EXPECT_TRUE(t.g.AddEdge(t.p1, t.b, EdgeType::kHasWritten, p1_b).ok());
  EXPECT_TRUE(t.g.AddEdge(t.b, t.p2, EdgeType::kReadFrom, b_p2).ok());
  EXPECT_TRUE(t.g.AddEdge(t.p2, t.c, EdgeType::kHasWritten, p2_c).ok());
  return t;
}

TEST(InferenceTest, Figure6aNoDependency) {
  // A -[2,3]-> P1 -[6,7]-> B -[1,5]-> P2 -[6,6]-> C.
  // P2 stopped reading B (at 5) before P1 wrote it (from 6): no dependency.
  ChainTrace t = MakeChain({2, 3}, {6, 7}, {1, 5}, {6, 6});
  DependencyAnalyzer analyzer(&t.g);
  EXPECT_FALSE(analyzer.Depends(t.c, t.a));
  // B itself is still a dependency of C (read before write of C completes).
  EXPECT_TRUE(analyzer.Depends(t.c, t.b));
}

TEST(InferenceTest, Figure6bDependsAtTime4) {
  // A -[1,1]-> P1 -[4,7]-> B -[2,5]-> P2 -[1,6]-> C: C depends on A at 4.
  ChainTrace t = MakeChain({1, 1}, {4, 7}, {2, 5}, {1, 6});
  DependencyAnalyzer analyzer(&t.g);
  EXPECT_TRUE(analyzer.Depends(t.c, t.a, 4));
  EXPECT_TRUE(analyzer.Depends(t.c, t.a));  // and at any later time
  // Before the information could have flowed (B readable only from 2, and
  // P1 writes B from 4), there is no dependency.
  EXPECT_FALSE(analyzer.Depends(t.c, t.a, 3));
}

TEST(InferenceTest, Figure6cBlockedByMissingDataDependency) {
  // Same temporal layout as 6b but B does not depend on A in D(G). For the
  // P_BB model that situation is expressed by *removing* the A->P1 read
  // (Definition 8 would otherwise force the dependency); the paper's trace
  // 6c marks the A-P1 interaction as carrying no data dependency.
  ChainTrace t = MakeChain({1, 1}, {4, 7}, {2, 5}, {1, 6});
  // Emulate by querying dependence of C on a file P1 never read:
  NodeId unread = t.g.GetOrAddNode(NodeType::kFile, "unread");
  DependencyAnalyzer analyzer(&t.g);
  EXPECT_FALSE(analyzer.Depends(t.c, unread));
}

TEST(InferenceTest, Example7WriteBeforeRead) {
  // Figure 4 variant: P1 reads A [1,5] and B [7,8]... wait — Example 7:
  // file C was written [2,3] by P1 before P1 read B [7,8]: C cannot depend
  // on B.
  TraceGraph g;
  NodeId a = g.GetOrAddNode(NodeType::kFile, "A");
  NodeId b = g.GetOrAddNode(NodeType::kFile, "B");
  NodeId c = g.GetOrAddNode(NodeType::kFile, "C");
  NodeId d = g.GetOrAddNode(NodeType::kFile, "D");
  NodeId p1 = g.GetOrAddNode(NodeType::kProcess, "P1");
  ASSERT_TRUE(g.AddEdge(a, p1, EdgeType::kReadFrom, {1, 5}).ok());
  ASSERT_TRUE(g.AddEdge(b, p1, EdgeType::kReadFrom, {7, 8}).ok());
  ASSERT_TRUE(g.AddEdge(p1, c, EdgeType::kHasWritten, {2, 3}).ok());
  ASSERT_TRUE(g.AddEdge(p1, d, EdgeType::kHasWritten, {8, 8}).ok());
  DependencyAnalyzer analyzer(&g);
  EXPECT_TRUE(analyzer.Depends(c, a));   // read [1,5] overlaps write [2,3]
  EXPECT_FALSE(analyzer.Depends(c, b));  // C written before B was read
  EXPECT_TRUE(analyzer.Depends(d, a));
  EXPECT_TRUE(analyzer.Depends(d, b));
}

TEST(InferenceTest, AblationWithoutTemporalConstraints) {
  // Disabling temporal pruning turns Figure 6a into a (spurious) dependency
  // — quantifying what the paper's temporal reasoning removes.
  ChainTrace t = MakeChain({2, 3}, {6, 7}, {1, 5}, {6, 6});
  DependencyAnalyzer analyzer(&t.g);
  analyzer.set_use_temporal_constraints(false);
  EXPECT_TRUE(analyzer.Depends(t.c, t.a));
}

TEST(InferenceTest, CrossModelDependencyThroughStatements) {
  // File -> process -> insert -> tuple -> query-result tuple -> process ->
  // file: the full combined-model chain of Figures 1/2.
  TraceGraph g;
  NodeId f1 = g.GetOrAddNode(NodeType::kFile, "f1");
  NodeId p1 = g.GetOrAddNode(NodeType::kProcess, "P1");
  NodeId insert = g.GetOrAddNode(NodeType::kInsert, "Insert");
  NodeId t1 = g.GetOrAddNode(NodeType::kTuple, "t1");
  NodeId query = g.GetOrAddNode(NodeType::kQuery, "Query");
  NodeId t4 = g.GetOrAddNode(NodeType::kTuple, "t4");
  NodeId p2 = g.GetOrAddNode(NodeType::kProcess, "P2");
  NodeId f2 = g.GetOrAddNode(NodeType::kFile, "f2");
  ASSERT_TRUE(g.AddEdge(f1, p1, EdgeType::kReadFrom, {1, 2}).ok());
  ASSERT_TRUE(g.AddEdge(p1, insert, EdgeType::kRun, {3, 3}).ok());
  ASSERT_TRUE(g.AddEdge(insert, t1, EdgeType::kHasReturned, {3, 3}).ok());
  ASSERT_TRUE(g.AddEdge(t1, query, EdgeType::kHasRead, {5, 5}).ok());
  ASSERT_TRUE(g.AddEdge(p2, query, EdgeType::kRun, {5, 5}).ok());
  ASSERT_TRUE(g.AddEdge(query, t4, EdgeType::kHasReturned, {5, 5}).ok());
  ASSERT_TRUE(g.AddEdge(t4, p2, EdgeType::kReadFromDb, {5, 5}).ok());
  ASSERT_TRUE(g.AddEdge(p2, f2, EdgeType::kHasWritten, {6, 7}).ok());
  g.AddTupleDependency(t4, t1);

  DependencyAnalyzer analyzer(&g);
  // Output file depends on the input file across both models.
  EXPECT_TRUE(analyzer.Depends(f2, f1));
  EXPECT_TRUE(analyzer.Depends(f2, t4));
  EXPECT_TRUE(analyzer.Depends(f2, t1));
  EXPECT_TRUE(analyzer.Depends(t4, t1));
  EXPECT_TRUE(analyzer.Depends(t4, f1));  // cross-model via P1/Insert
  // Without the lineage pair, the tuple-tuple link breaks the chain.
  TraceGraph g2 = g;
  // (Rebuild without the dependency pair.)
  TraceGraph h;
  NodeId h_t1 = h.GetOrAddNode(NodeType::kTuple, "t1");
  NodeId h_q = h.GetOrAddNode(NodeType::kQuery, "Query");
  NodeId h_t4 = h.GetOrAddNode(NodeType::kTuple, "t4");
  ASSERT_TRUE(h.AddEdge(h_t1, h_q, EdgeType::kHasRead, {5, 5}).ok());
  ASSERT_TRUE(h.AddEdge(h_q, h_t4, EdgeType::kHasReturned, {5, 5}).ok());
  DependencyAnalyzer analyzer_h(&h);
  EXPECT_FALSE(analyzer_h.Depends(h_t4, h_t1));  // not in Lineage
  h.AddTupleDependency(h_t4, h_t1);
  EXPECT_TRUE(analyzer_h.Depends(h_t4, h_t1));
}

TEST(InferenceTest, RelevantPackageTuplesMatchPaperFigure1) {
  // Figure 1: t1 inserted by the app; t2 untouched; t3 also created by the
  // app (Insert2); t4 is a query result. Pre-existing tuple read by the
  // query: we add one (t0) to stand for data that must be packaged.
  TraceGraph g;
  NodeId p1 = g.GetOrAddNode(NodeType::kProcess, "P1");
  NodeId insert = g.GetOrAddNode(NodeType::kInsert, "Insert1");
  NodeId t0 = g.GetOrAddNode(NodeType::kTuple, "t0");  // pre-existing
  NodeId t1 = g.GetOrAddNode(NodeType::kTuple, "t1");  // app-created
  NodeId t2 = g.GetOrAddNode(NodeType::kTuple, "t2");  // never accessed
  NodeId query = g.GetOrAddNode(NodeType::kQuery, "Query");
  NodeId t4 = g.GetOrAddNode(NodeType::kTuple, "t4");
  NodeId p2 = g.GetOrAddNode(NodeType::kProcess, "P2");
  ASSERT_TRUE(g.AddEdge(p1, insert, EdgeType::kRun, {2, 2}).ok());
  ASSERT_TRUE(g.AddEdge(insert, t1, EdgeType::kHasReturned, {2, 2}).ok());
  ASSERT_TRUE(g.AddEdge(t0, query, EdgeType::kHasRead, {4, 4}).ok());
  ASSERT_TRUE(g.AddEdge(t1, query, EdgeType::kHasRead, {4, 4}).ok());
  ASSERT_TRUE(g.AddEdge(p2, query, EdgeType::kRun, {4, 4}).ok());
  ASSERT_TRUE(g.AddEdge(query, t4, EdgeType::kHasReturned, {4, 4}).ok());
  ASSERT_TRUE(g.AddEdge(t4, p2, EdgeType::kReadFromDb, {4, 4}).ok());
  g.AddTupleDependency(t4, t0);
  g.AddTupleDependency(t4, t1);

  DependencyAnalyzer analyzer(&g);
  std::vector<NodeId> relevant = analyzer.RelevantPackageTuples();
  // Only t0: t1/t4 are app-created (incoming edges), t2 was never used.
  ASSERT_EQ(relevant.size(), 1u);
  EXPECT_EQ(relevant[0], t0);
  (void)t2;
}

// ---------------------------------------------------------------------------
// Property test: the analyzer agrees with brute-force path enumeration over
// randomized small traces (soundness + completeness w.r.t. Definition 11,
// Theorem 1).
// ---------------------------------------------------------------------------

struct RandomTrace {
  TraceGraph g;
  std::vector<NodeId> files;
  std::vector<NodeId> processes;
};

RandomTrace MakeRandomTrace(uint64_t seed) {
  RandomTrace t;
  Rng rng(seed);
  int num_files = static_cast<int>(rng.Uniform(3, 6));
  int num_procs = static_cast<int>(rng.Uniform(2, 4));
  for (int i = 0; i < num_files; ++i) {
    t.files.push_back(
        t.g.GetOrAddNode(NodeType::kFile, "f" + std::to_string(i)));
  }
  for (int i = 0; i < num_procs; ++i) {
    t.processes.push_back(
        t.g.GetOrAddNode(NodeType::kProcess, "p" + std::to_string(i)));
  }
  int num_edges = static_cast<int>(rng.Uniform(4, 12));
  for (int i = 0; i < num_edges; ++i) {
    NodeId file = t.files[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(t.files.size()) - 1))];
    NodeId proc = t.processes[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(t.processes.size()) - 1))];
    int64_t begin = rng.Uniform(1, 10);
    int64_t end = begin + rng.Uniform(0, 5);
    if (rng.Bernoulli(0.5)) {
      (void)t.g.MergeEdge(file, proc, EdgeType::kReadFrom, {begin, end});
    } else {
      (void)t.g.MergeEdge(proc, file, EdgeType::kHasWritten, {begin, end});
    }
  }
  return t;
}

/// Brute force: enumerate all edge-simple walks from candidate to target
/// (nodes may repeat — a process can read f, write g, re-read g, write h)
/// and check Definition 11 directly on each. Along a walk the feasible time
/// bound only tightens, so reusing an edge can never enable a dependency an
/// edge-simple walk misses.
bool BruteForceDepends(const TraceGraph& g, NodeId target, NodeId candidate,
                       int64_t t) {
  bool found = false;
  std::vector<int32_t> path;
  std::set<int32_t> used_edges;
  std::function<void(NodeId)> dfs = [&](NodeId v) {
    if (found) return;
    if (v == target && !path.empty()) {
      if (PathSatisfiesDefinition11(g, path, t)) found = true;
      // Keep exploring: a longer walk through `target` cannot help reach
      // `target` more feasibly, so returning here is fine.
      return;
    }
    for (int32_t edge_index : g.OutEdges(v)) {
      if (used_edges.contains(edge_index)) continue;
      const TraceEdge& edge = g.edges()[static_cast<size_t>(edge_index)];
      used_edges.insert(edge_index);
      path.push_back(edge_index);
      dfs(edge.to);
      path.pop_back();
      used_edges.erase(edge_index);
    }
  };
  dfs(candidate);
  return found;
}

class InferencePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InferencePropertyTest, AnalyzerMatchesBruteForce) {
  RandomTrace t = MakeRandomTrace(GetParam());
  DependencyAnalyzer analyzer(&t.g);
  for (int64_t query_time : {5, 8, 12, 100}) {
    for (NodeId target : t.files) {
      std::vector<NodeId> deps = analyzer.DependenciesOf(target, query_time);
      std::set<NodeId> dep_set(deps.begin(), deps.end());
      for (NodeId candidate : t.files) {
        if (candidate == target) continue;
        bool expected = BruteForceDepends(t.g, target, candidate, query_time);
        EXPECT_EQ(dep_set.contains(candidate), expected)
            << "seed=" << GetParam() << " time=" << query_time << " target=f"
            << target << " candidate=f" << candidate << "\n"
            << t.g.ToDot();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTraces, InferencePropertyTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace ldv::trace
