#include <gtest/gtest.h>

#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "common/fault.h"
#include "ldv/auditor.h"
#include "ldv/replayer.h"
#include "net/db_server.h"
#include "net/protocol.h"
#include "net/retrying_db_client.h"
#include "obs/metrics.h"
#include "storage/persistence.h"
#include "util/fsutil.h"
#include "util/rng.h"
#include "util/strings.h"

namespace ldv {
namespace {

using storage::Database;
using storage::Value;
using storage::ValueType;

// ---------------------------------------------------------------------------
// FaultInjector unit behavior.
// ---------------------------------------------------------------------------

class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Instance().Reset(); }
};

TEST_F(FaultInjectorTest, DisabledInjectorIsFreeOfSideEffects) {
  FaultInjector& inj = FaultInjector::Instance();
  inj.Reset();
  FaultPointConfig always;
  always.failure_probability = 1.0;
  inj.Configure("unit.point", always);
  // Not enabled: every check passes without even counting the call.
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(CheckFault("unit.point").ok());
  EXPECT_EQ(inj.CallCount("unit.point"), 0);
  EXPECT_EQ(inj.InjectedCount("unit.point"), 0);
}

TEST_F(FaultInjectorTest, FailAfterWindowFiresExactly) {
  FaultInjector& inj = FaultInjector::Instance();
  inj.Reset();
  inj.Enable(1);
  FaultPointConfig config;
  config.fail_after_calls = 3;
  config.fail_times = 2;
  inj.Configure("unit.after", config);
  std::vector<bool> failed;
  for (int i = 0; i < 8; ++i) {
    failed.push_back(!CheckFault("unit.after").ok());
  }
  EXPECT_EQ(failed, (std::vector<bool>{false, false, false, true, true, false,
                                       false, false}));
  EXPECT_EQ(inj.CallCount("unit.after"), 8);
  EXPECT_EQ(inj.InjectedCount("unit.after"), 2);
}

TEST_F(FaultInjectorTest, ProbabilityDrawsAreSeedDeterministic) {
  FaultInjector& inj = FaultInjector::Instance();
  auto run = [&inj](uint64_t seed) {
    inj.Reset();
    inj.Enable(seed);
    FaultPointConfig config;
    config.failure_probability = 0.3;
    inj.Configure("unit.p", config);
    std::vector<int> failures;
    for (int i = 0; i < 500; ++i) {
      if (!CheckFault("unit.p").ok()) failures.push_back(i);
    }
    return failures;
  };
  std::vector<int> first = run(0xF00D);
  std::vector<int> second = run(0xF00D);
  EXPECT_EQ(first, second);  // bit-reproducible for a fixed seed
  // Roughly 30% of 500 calls fail.
  EXPECT_GT(first.size(), 100u);
  EXPECT_LT(first.size(), 220u);
  // A different seed gives a different failure pattern.
  EXPECT_NE(first, run(0xBEEF));
}

TEST_F(FaultInjectorTest, SpecConfiguresMultiplePoints) {
  FaultInjector& inj = FaultInjector::Instance();
  inj.Reset();
  ASSERT_TRUE(
      inj.ConfigureFromSpec("net.send=p:1.0;fs.rename=after:0,times:2").ok());
  inj.Enable(1);
  EXPECT_FALSE(CheckFault("net.send").ok());
  EXPECT_FALSE(CheckFault("fs.rename").ok());
  EXPECT_FALSE(CheckFault("fs.rename").ok());
  EXPECT_TRUE(CheckFault("fs.rename").ok());  // window exhausted
  // Unconfigured points pass through untouched.
  EXPECT_TRUE(CheckFault("net.recv").ok());
}

TEST_F(FaultInjectorTest, MalformedSpecsAreRejected) {
  FaultInjector& inj = FaultInjector::Instance();
  EXPECT_FALSE(inj.ConfigureFromSpec("nokindvalue").ok());
  EXPECT_FALSE(inj.ConfigureFromSpec("x=zz:1").ok());
  EXPECT_FALSE(inj.ConfigureFromSpec("x=p:notanumber").ok());
  EXPECT_FALSE(inj.ConfigureFromSpec("=p:0.5").ok());
  EXPECT_FALSE(inj.ConfigureFromSpec("x=p").ok());
}

TEST_F(FaultInjectorTest, PointStatsMirrorIntoMetricsRegistry) {
  FaultInjector& inj = FaultInjector::Instance();
  inj.Reset();
  ASSERT_TRUE(
      inj.ConfigureFromSpec("unit.a=after:0,times:2;unit.b=p:0.0").ok());
  inj.Enable(7);
  for (int i = 0; i < 5; ++i) {
    (void)inj.Check("unit.a");
    (void)inj.Check("unit.b");
  }

  // The coverage assertion fault-storm tests rely on: every armed point's
  // call/injection totals are visible as fault.* gauges after a capture.
  obs::MetricsRegistry registry;
  obs::CaptureFaultInjectorMetrics(&registry);
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.gauges.at("fault.unit.a.calls"), inj.CallCount("unit.a"));
  EXPECT_EQ(snapshot.gauges.at("fault.unit.a.injected"),
            inj.InjectedCount("unit.a"));
  EXPECT_EQ(snapshot.gauges.at("fault.unit.a.injected"), 2);  // times:2
  EXPECT_EQ(snapshot.gauges.at("fault.unit.b.calls"), 5);
  EXPECT_EQ(snapshot.gauges.at("fault.unit.b.injected"), 0);  // p:0 never fires
  // And they survive into the serialized snapshot the Stats message ships.
  EXPECT_NE(snapshot.ToJson().Dump().find("fault.unit.a.injected"),
            std::string::npos);
}

TEST_F(FaultInjectorTest, InjectedFailureNamesThePoint) {
  FaultInjector& inj = FaultInjector::Instance();
  inj.Reset();
  inj.Enable(1);
  FaultPointConfig config;
  config.fail_after_calls = 0;
  inj.Configure("unit.msg", config);
  Status s = CheckFault("unit.msg");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_NE(s.message().find("unit.msg"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Crash-safe persistence: an interrupted save must leave the previous state
// loadable, and corruption must be detected (not silently loaded).
// ---------------------------------------------------------------------------

class CrashSafePersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("ldv_crash_");
    ASSERT_TRUE(dir.ok());
    base_ = *dir;
    data_ = base_ + "/data";
    Populate(&db_, 10);
  }

  void TearDown() override {
    FaultInjector::Instance().Reset();
    ASSERT_TRUE(RemoveAll(base_).ok());
  }

  static void Populate(Database* db, int rows) {
    auto items = db->CreateTable("items", storage::Schema({
                                              {"id", ValueType::kInt64},
                                              {"val", ValueType::kInt64},
                                          }));
    ASSERT_TRUE(items.ok());
    int64_t seq = db->NextStatementSeq();
    for (int i = 1; i <= rows; ++i) {
      ASSERT_TRUE(
          (*items)->Insert({Value::Int(i), Value::Int(i * 10)}, seq).ok());
    }
  }

  void Mutate() {
    int64_t seq = db_.NextStatementSeq();
    ASSERT_TRUE(db_.FindTable("items")
                    ->Insert({Value::Int(99), Value::Int(990)}, seq)
                    .ok());
  }

  /// Deterministic byte-level snapshot of the items table.
  static std::string Snapshot(const Database& db) {
    return storage::SerializeTable(*db.FindTable("items"));
  }

  std::string base_;
  std::string data_;
  Database db_;
};

TEST_F(CrashSafePersistenceTest, SaveDiesAtFirstRenameKeepsPreviousState) {
  ASSERT_TRUE(storage::SaveDatabase(db_, data_).ok());
  std::string before = Snapshot(db_);

  Mutate();
  FaultInjector& inj = FaultInjector::Instance();
  ASSERT_TRUE(inj.ConfigureFromSpec("fs.rename=after:0,times:100").ok());
  inj.Enable(42);
  EXPECT_FALSE(storage::SaveDatabase(db_, data_).ok());
  inj.Reset();

  Database loaded;
  ASSERT_TRUE(storage::LoadDatabase(&loaded, data_).ok());
  EXPECT_EQ(Snapshot(loaded), before);  // checksum-clean previous state
}

TEST_F(CrashSafePersistenceTest, SaveDiesAtCatalogCommitKeepsPreviousState) {
  ASSERT_TRUE(storage::SaveDatabase(db_, data_).ok());
  std::string before = Snapshot(db_);

  // One table: rename #0 is the data file, rename #1 is the catalog — the
  // commit point. The new-generation data file lands, but the catalog still
  // references the old one.
  Mutate();
  FaultInjector& inj = FaultInjector::Instance();
  ASSERT_TRUE(inj.ConfigureFromSpec("fs.rename=after:1,times:1").ok());
  inj.Enable(42);
  EXPECT_FALSE(storage::SaveDatabase(db_, data_).ok());
  inj.Reset();

  Database loaded;
  ASSERT_TRUE(storage::LoadDatabase(&loaded, data_).ok());
  EXPECT_EQ(Snapshot(loaded), before);
}

TEST_F(CrashSafePersistenceTest, RewriteAdvancesGenerationAndCollectsOld) {
  ASSERT_TRUE(storage::SaveDatabase(db_, data_).ok());
  EXPECT_TRUE(FileExists(data_ + "/items.tbl"));

  Mutate();
  ASSERT_TRUE(storage::SaveDatabase(db_, data_).ok());
  EXPECT_TRUE(FileExists(data_ + "/items.g2.tbl"));
  EXPECT_FALSE(FileExists(data_ + "/items.tbl"));  // old generation GC'd

  Database loaded;
  ASSERT_TRUE(storage::LoadDatabase(&loaded, data_).ok());
  EXPECT_EQ(Snapshot(loaded), Snapshot(db_));
}

TEST_F(CrashSafePersistenceTest, CorruptDataFileIsReportedWithTableName) {
  ASSERT_TRUE(storage::SaveDatabase(db_, data_).ok());
  auto payload = ReadFileToString(data_ + "/items.tbl");
  ASSERT_TRUE(payload.ok());
  ASSERT_GE(payload->size(), 8u);
  (*payload)[payload->size() / 2] ^= 0x5A;  // flip one byte mid-payload
  ASSERT_TRUE(WriteStringToFile(data_ + "/items.tbl", *payload).ok());

  Database loaded;
  Status s = storage::LoadDatabase(&loaded, data_);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_NE(s.message().find("items"), std::string::npos);
  EXPECT_NE(s.message().find("checksum mismatch"), std::string::npos);
}

TEST_F(CrashSafePersistenceTest, TruncatedDataFileIsReported) {
  ASSERT_TRUE(storage::SaveDatabase(db_, data_).ok());
  auto payload = ReadFileToString(data_ + "/items.tbl");
  ASSERT_TRUE(payload.ok());

  // Shorter than the CRC trailer itself.
  ASSERT_TRUE(WriteStringToFile(data_ + "/items.tbl", "xy").ok());
  Database loaded1;
  Status s = storage::LoadDatabase(&loaded1, data_);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_NE(s.message().find("items"), std::string::npos);
  EXPECT_NE(s.message().find("truncated"), std::string::npos);

  // Tail chopped off: the trailer no longer matches the content.
  ASSERT_TRUE(WriteStringToFile(data_ + "/items.tbl",
                                payload->substr(0, payload->size() - 20))
                  .ok());
  Database loaded2;
  s = storage::LoadDatabase(&loaded2, data_);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_NE(s.message().find("items"), std::string::npos);
}

TEST_F(CrashSafePersistenceTest, MissingDataFileIsNotFound) {
  ASSERT_TRUE(storage::SaveDatabase(db_, data_).ok());
  ASSERT_TRUE(RemoveAll(data_ + "/items.tbl").ok());
  Database loaded;
  Status s = storage::LoadDatabase(&loaded, data_);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.message().find("items"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Frame guard: a forged length prefix must be rejected up front, never used
// as an allocation size.
// ---------------------------------------------------------------------------

TEST(FrameGuardTest, RecvFrameRejectsForgedGiantLengthPrefix) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // 0xC0000000 = 3 GiB, little-endian on the wire.
  const unsigned char prefix[4] = {0x00, 0x00, 0x00, 0xC0};
  ASSERT_EQ(::send(fds[0], prefix, sizeof(prefix), 0), 4);
  auto got = net::RecvFrame(fds[1]);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(net::IsOversizedFrameError(got.status()));
  EXPECT_NE(got.status().message().find("oversized frame"), std::string::npos);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FrameGuardTest, SendFrameRefusesOversizedPayload) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string big(static_cast<size_t>(net::kMaxFrameBytes) + 1, 'x');
  Status s = net::SendFrame(fds[0], big);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FrameGuardTest, ServerAnswersForgedPrefixWithErrorThenDrops) {
  auto dir = MakeTempDir("ldv_frame_");
  ASSERT_TRUE(dir.ok());
  Database db;
  net::EngineHandle engine(&db);
  net::DbServer server(&engine, *dir + "/db.sock");
  ASSERT_TRUE(server.Start().ok());

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::string path = server.socket_path();
  ASSERT_LT(path.size(), sizeof(addr.sun_path));
  memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  const unsigned char prefix[4] = {0x00, 0x00, 0x00, 0xC0};  // 3 GiB claim
  ASSERT_EQ(::send(fd, prefix, sizeof(prefix), 0), 4);
  auto response = net::RecvFrame(fd);
  ASSERT_TRUE(response.ok());  // the server still answered
  auto decoded = net::DecodeResponse(*response);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("oversized frame"),
            std::string::npos);
  // The stream cannot be resynchronized, so the server then hangs up.
  char byte;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
  server.Stop();
  ASSERT_TRUE(RemoveAll(*dir).ok());
}

// ---------------------------------------------------------------------------
// End-to-end resilience: an audited workload over a faulty socket completes
// through the retrying client and produces exactly the fault-free results.
// ---------------------------------------------------------------------------

class FaultedAuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("ldv_fault_e2e_");
    ASSERT_TRUE(dir.ok());
    base_ = *dir;
    ASSERT_TRUE(MakeDirs(base_ + "/sandbox").ok());
  }

  void TearDown() override {
    FaultInjector::Instance().Reset();
    ASSERT_TRUE(RemoveAll(base_).ok());
  }

  static void Populate(Database* db) {
    auto items = db->CreateTable("items", storage::Schema({
                                              {"id", ValueType::kInt64},
                                              {"val", ValueType::kInt64},
                                              {"tag", ValueType::kString},
                                          }));
    ASSERT_TRUE(items.ok());
    int64_t seq = db->NextStatementSeq();
    for (int i = 1; i <= 20; ++i) {
      ASSERT_TRUE((*items)
                      ->Insert({Value::Int(i), Value::Int(i * 7 % 100),
                                Value::Str("pre")},
                               seq)
                      .ok());
    }
  }

  /// 200-statement deterministic workload mixing DML and fingerprinted
  /// queries.
  static AppFn Workload(uint64_t* fingerprint_out) {
    return [fingerprint_out](AppEnv& env) -> Status {
      os::ProcessContext& proc = env.root_process();
      LDV_ASSIGN_OR_RETURN(net::DbClient * db, env.OpenDbConnection(proc));
      Rng rng(0xAB5EED);
      uint64_t fp = 0;
      for (int i = 0; i < 200; ++i) {
        int64_t choice = rng.Uniform(0, 3);
        if (choice == 0) {
          LDV_RETURN_IF_ERROR(
              db->Query(StrFormat("INSERT INTO items VALUES (%lld, %lld, 'w')",
                                  static_cast<long long>(1000 + i),
                                  static_cast<long long>(rng.Uniform(0, 500))))
                  .status());
        } else if (choice == 1) {
          LDV_RETURN_IF_ERROR(
              db->Query(StrFormat(
                            "UPDATE items SET val = val + 3 WHERE id = %lld",
                            static_cast<long long>(rng.Uniform(1, 20))))
                  .status());
        } else {
          int64_t lo = rng.Uniform(0, 80);
          LDV_ASSIGN_OR_RETURN(
              exec::ResultSet r,
              db->Query(StrFormat(
                  "SELECT id, val FROM items WHERE val BETWEEN %lld AND %lld",
                  static_cast<long long>(lo), static_cast<long long>(lo + 30))));
          fp ^= r.Fingerprint() + static_cast<uint64_t>(i);
        }
      }
      if (fingerprint_out != nullptr) *fingerprint_out = fp;
      return Status::Ok();
    };
  }

  /// Socket-backed audit of Workload against a fresh database, optionally
  /// under an armed fault spec. Faults are disarmed before the server stops.
  void RunAudit(const std::string& name, const std::string& fault_spec,
                uint64_t* fp) {
    Database db;
    Populate(&db);
    net::EngineHandle engine(&db);
    net::DbServer server(&engine, base_ + "/" + name + ".sock");
    ASSERT_TRUE(server.Start().ok());

    AuditOptions options;
    options.mode = PackageMode::kServerIncluded;
    options.package_dir = base_ + "/packages/" + name;
    options.sandbox_root = base_ + "/sandbox";
    options.db_socket_path = server.socket_path();

    FaultInjector& inj = FaultInjector::Instance();
    if (!fault_spec.empty()) {
      ASSERT_TRUE(inj.ConfigureFromSpec(fault_spec).ok());
      inj.Enable(0xD15EA5E);
    }
    Status run_status;
    int64_t injected = 0;
    {
      Auditor auditor(&db, options);
      auto report = auditor.Run(Workload(fp));
      run_status = report.ok() ? Status::Ok() : report.status();
    }
    injected =
        inj.InjectedCount("net.send") + inj.InjectedCount("net.recv");
    inj.Reset();
    server.Stop();
    ASSERT_TRUE(run_status.ok()) << run_status.ToString();
    if (!fault_spec.empty()) {
      EXPECT_GT(injected, 0) << "fault spec armed but nothing fired";
    }
  }

  std::string base_;
};

TEST_F(FaultedAuditTest, AuditedWorkloadSurvivesSocketFaultStorm) {
  uint64_t clean_fp = 0;
  RunAudit("clean", "", &clean_fp);

  uint64_t fault_fp = 1;
  RunAudit("fault", "net.send=p:0.3;net.recv=p:0.3", &fault_fp);
  EXPECT_EQ(fault_fp, clean_fp);

  // The package audited under fire replays (fault-free) to the same results.
  ReplayOptions options;
  options.package_dir = base_ + "/packages/fault";
  options.scratch_dir = base_ + "/scratch";
  auto replayer = Replayer::Open(options);
  ASSERT_TRUE(replayer.ok()) << replayer.status().ToString();
  uint64_t replay_fp = 2;
  auto report = (*replayer)->Run(Workload(&replay_fp));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(replay_fp, clean_fp);
}

TEST_F(FaultedAuditTest, RetryingClientCompletesUnderFaultStorm) {
  Database db;
  Populate(&db);
  net::EngineHandle engine(&db);
  net::DbServer server(&engine, base_ + "/storm.sock");
  ASSERT_TRUE(server.Start().ok());

  FaultInjector& inj = FaultInjector::Instance();
  ASSERT_TRUE(inj.ConfigureFromSpec("net.send=p:0.3;net.recv=p:0.3").ok());
  inj.Enable(7);

  auto client = net::RetryingDbClient::ForSocket(server.socket_path());
  for (int i = 0; i < 50; ++i) {
    auto r = client->Query("SELECT count(*) FROM items");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows[0][0].AsInt(), 20);
  }
  EXPECT_GT(client->attempts(), 50);  // some attempts were retries
  EXPECT_GT(client->reconnects(), 0);

  inj.Reset();
  server.Stop();
}

TEST_F(FaultedAuditTest, EngineErrorsAreNotRetried) {
  Database db;
  Populate(&db);
  net::EngineHandle engine(&db);
  net::DbServer server(&engine, base_ + "/pass.sock");
  ASSERT_TRUE(server.Start().ok());

  auto client = net::RetryingDbClient::ForSocket(server.socket_path());
  auto r = client->Query("SELECT * FROM no_such_table");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client->attempts(), 1);  // engine errors pass through untouched
  server.Stop();
}

}  // namespace
}  // namespace ldv
