#include <gtest/gtest.h>

#include "ldv/replay_db_client.h"
#include "net/protocol.h"
#include "util/fsutil.h"
#include "util/serde.h"

namespace ldv {
namespace {

using storage::Value;

exec::ResultSet OneRowResult(int64_t v) {
  exec::ResultSet r;
  r.schema = storage::Schema({{"v", storage::ValueType::kInt64}});
  r.rows.push_back({Value::Int(v)});
  r.affected = 1;
  return r;
}

/// Writes a replay log with the given (sql, pid, value) entries.
std::string WriteLog(const std::string& dir,
                     const std::vector<std::tuple<std::string, int64_t,
                                                  int64_t>>& entries) {
  BufferWriter log;
  for (const auto& [sql, pid, value] : entries) {
    net::DbRequest request;
    request.sql = sql;
    request.process_id = pid;
    BufferWriter frame;
    log.PutString(net::EncodeRequest(request));
    log.PutString(net::EncodeResponse(Status::Ok(), OneRowResult(value)));
  }
  std::string path = JoinPath(dir, "replay.log");
  EXPECT_TRUE(WriteStringToFile(path, log.data()).ok());
  return path;
}

class ReplayLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("ldv_replaylog_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }
  std::string dir_;
};

TEST_F(ReplayLogTest, InOrderReplay) {
  std::string path = WriteLog(dir_, {{"SELECT 1", 1, 10},
                                     {"SELECT 2", 1, 20},
                                     {"SELECT 1", 1, 30}});
  auto log = ReplayLog::Load(path);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->size(), 3);
  // Repeated statements return successive recorded answers, in order.
  EXPECT_EQ((*(*log)->Next("SELECT 1")).rows[0][0].AsInt(), 10);
  EXPECT_EQ((*(*log)->Next("SELECT 2")).rows[0][0].AsInt(), 20);
  EXPECT_EQ((*(*log)->Next("SELECT 1")).rows[0][0].AsInt(), 30);
  EXPECT_EQ((*log)->replayed(), 3);
}

TEST_F(ReplayLogTest, ToleratesInterleavedProcessOrder) {
  // Two processes' statements were recorded interleaved; replay may consume
  // them in a different interleaving as long as each stream is in order.
  std::string path = WriteLog(dir_, {{"SELECT a", 1, 1},
                                     {"SELECT b", 2, 2},
                                     {"SELECT a", 1, 3}});
  auto log = ReplayLog::Load(path);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*(*log)->Next("SELECT b")).rows[0][0].AsInt(), 2);
  EXPECT_EQ((*(*log)->Next("SELECT a")).rows[0][0].AsInt(), 1);
  EXPECT_EQ((*(*log)->Next("SELECT a")).rows[0][0].AsInt(), 3);
}

TEST_F(ReplayLogTest, UnrecordedStatementIsAMismatch) {
  std::string path = WriteLog(dir_, {{"SELECT 1", 1, 10}});
  auto log = ReplayLog::Load(path);
  ASSERT_TRUE(log.ok());
  auto miss = (*log)->Next("SELECT 99");
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kReplayMismatch);
  // The recorded one is still available afterwards.
  EXPECT_TRUE((*log)->Next("SELECT 1").ok());
  // ... but not twice.
  EXPECT_FALSE((*log)->Next("SELECT 1").ok());
}

TEST_F(ReplayLogTest, ClientAdapterDelegates) {
  std::string path = WriteLog(dir_, {{"SELECT 1", 1, 42}});
  auto log = ReplayLog::Load(path);
  ASSERT_TRUE(log.ok());
  ReplayDbClient client(log->get());
  auto result = client.Query("SELECT 1");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].AsInt(), 42);
}

TEST_F(ReplayLogTest, CorruptLogFailsToLoad) {
  std::string path = JoinPath(dir_, "bad.log");
  ASSERT_TRUE(WriteStringToFile(path, "garbage bytes").ok());
  EXPECT_FALSE(ReplayLog::Load(path).ok());
  EXPECT_FALSE(ReplayLog::Load(JoinPath(dir_, "missing.log")).ok());
}

TEST_F(ReplayLogTest, EmptyLogReplaysNothing) {
  std::string path = JoinPath(dir_, "empty.log");
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  auto log = ReplayLog::Load(path);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->size(), 0);
  EXPECT_FALSE((*log)->Next("SELECT 1").ok());
}

}  // namespace
}  // namespace ldv
