// MVCC concurrency subsystem (DESIGN.md §12): snapshot-isolated reads over
// the row-version archive, the catalog/table lock hierarchy, snapshot GC,
// inter-query parallelism of independent SELECTs, and the server-side
// satellites (dedup TTL/LRU, disconnect-watcher poll).
//
// The multi-threaded suites here are the read/write stress gate and run
// under ThreadSanitizer via tools/check.sh --tsan.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "net/db_client.h"
#include "net/db_server.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "storage/database.h"
#include "storage/table.h"
#include "txn/lock_registry.h"
#include "txn/rwlock.h"
#include "txn/snapshot.h"
#include "util/fsutil.h"

namespace ldv::net {
namespace {

using storage::Database;
using storage::Table;

Result<exec::ResultSet> Exec(EngineHandle* engine, int64_t session,
                             const std::string& sql) {
  DbRequest request;
  request.sql = sql;
  return engine->ExecuteSession(request, session);
}

int64_t SingleInt(const Result<exec::ResultSet>& result) {
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok() || result->rows.empty()) return -1;
  return result->rows[0][0].AsInt();
}

// ---------------------------------------------------------------------------
// SharedMutex
// ---------------------------------------------------------------------------

TEST(SharedMutexTest, ReadersCoexist) {
  txn::SharedMutex mu;
  ASSERT_TRUE(mu.LockShared().ok());
  std::atomic<bool> second_got{false};
  std::thread t([&] {
    ASSERT_TRUE(mu.LockShared().ok());
    second_got.store(true);
    mu.UnlockShared();
  });
  t.join();
  EXPECT_TRUE(second_got.load());
  mu.UnlockShared();
}

TEST(SharedMutexTest, WriterExcludesReadersAndIsPreferred) {
  txn::SharedMutex mu;
  ASSERT_TRUE(mu.LockShared().ok());

  std::atomic<int> order{0};
  std::atomic<int> writer_at{-1};
  std::atomic<int> reader_at{-1};
  std::thread writer([&] {
    ASSERT_TRUE(mu.LockExclusive().ok());
    writer_at.store(order.fetch_add(1));
    mu.UnlockExclusive();
  });
  // Give the writer time to queue, then start a reader: writer preference
  // must admit the writer first even though the reader could share with the
  // lock's current holder.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread reader([&] {
    ASSERT_TRUE(mu.LockShared().ok());
    reader_at.store(order.fetch_add(1));
    mu.UnlockShared();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  mu.UnlockShared();
  writer.join();
  reader.join();
  EXPECT_LT(writer_at.load(), reader_at.load());
}

TEST(SharedMutexTest, WriterReentersAndReadsWithinWrite) {
  txn::SharedMutex mu;
  ASSERT_TRUE(mu.LockExclusive().ok());
  ASSERT_TRUE(mu.LockExclusive().ok());  // re-entry by the owner
  ASSERT_TRUE(mu.LockShared().ok());     // read within write
  mu.UnlockShared();
  mu.UnlockExclusive();
  // Still exclusively held once: another thread must not get in.
  std::atomic<bool> got{false};
  std::thread t([&] {
    ASSERT_TRUE(mu.LockShared().ok());
    got.store(true);
    mu.UnlockShared();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(got.load());
  mu.UnlockExclusive();
  t.join();
  EXPECT_TRUE(got.load());
}

TEST(SharedMutexTest, PollCancelsWaitingWriter) {
  txn::SharedMutex mu;
  ASSERT_TRUE(mu.LockShared().ok());
  std::atomic<bool> cancel{false};
  Status status = Status::Ok();
  std::thread writer([&] {
    status = mu.LockExclusive([&]() -> Status {
      return cancel.load() ? Status::Cancelled("stop waiting") : Status::Ok();
    });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  cancel.store(true);
  writer.join();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  // The cancelled waiter must not leave writer-preference debris behind:
  // new readers are admitted again.
  std::thread reader([&] {
    ASSERT_TRUE(mu.LockShared().ok());
    mu.UnlockShared();
  });
  reader.join();
  mu.UnlockShared();
}

// ---------------------------------------------------------------------------
// SnapshotManager
// ---------------------------------------------------------------------------

TEST(SnapshotManagerTest, WatermarkTracksOldestLiveSnapshot) {
  txn::SnapshotManager mgr;
  mgr.AdvanceCommitted(10);
  EXPECT_EQ(mgr.committed_epoch(), 10);
  EXPECT_EQ(mgr.OldestLiveEpoch(), 10);

  const int64_t a = mgr.AcquireSnapshot();
  EXPECT_EQ(a, 10);
  mgr.AdvanceCommitted(20);
  const int64_t b = mgr.AcquireSnapshot();
  EXPECT_EQ(b, 20);
  EXPECT_EQ(mgr.OldestLiveEpoch(), 10);
  EXPECT_EQ(mgr.live_snapshots(), 2);

  mgr.ReleaseSnapshot(a);
  EXPECT_EQ(mgr.OldestLiveEpoch(), 20);
  mgr.ReleaseSnapshot(b);
  EXPECT_EQ(mgr.OldestLiveEpoch(), 20);
  EXPECT_EQ(mgr.live_snapshots(), 0);

  mgr.AdvanceCommitted(5);  // lower values never regress the epoch
  EXPECT_EQ(mgr.committed_epoch(), 20);
}

TEST(SnapshotManagerTest, SnapshotRefReleasesOnScopeExit) {
  txn::SnapshotManager mgr;
  mgr.AdvanceCommitted(3);
  {
    txn::SnapshotRef ref(&mgr);
    EXPECT_TRUE(ref.active());
    EXPECT_EQ(ref.epoch(), 3);
    EXPECT_EQ(mgr.live_snapshots(), 1);
  }
  EXPECT_EQ(mgr.live_snapshots(), 0);
}

// ---------------------------------------------------------------------------
// Table visibility + GC
// ---------------------------------------------------------------------------

TEST(TableMvccTest, VisibleVersionResolvesThroughArchive) {
  Database db;
  db.SetMvccRetention(true);
  auto created = db.CreateTable(
      "t", storage::Schema({storage::Column{"x", storage::ValueType::kInt64}}));
  ASSERT_TRUE(created.ok());
  Table* t = *created;
  auto inserted = t->Insert({storage::Value::Int(1)}, db.NextStatementSeq());
  ASSERT_TRUE(inserted.ok());
  const storage::RowId rowid = *inserted;
  const int64_t epoch_v1 = db.current_statement_seq();
  ASSERT_TRUE(
      t->Update(rowid, {storage::Value::Int(2)}, db.NextStatementSeq()).ok());
  const int64_t epoch_v2 = db.current_statement_seq();

  const storage::RowVersion& live = t->rows()[0];
  const storage::RowVersion* v1 = t->VisibleVersion(live, epoch_v1);
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->values[0].AsInt(), 1);
  const storage::RowVersion* v2 = t->VisibleVersion(live, epoch_v2);
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v2->values[0].AsInt(), 2);
  // Before the insert, the row does not exist.
  EXPECT_EQ(t->VisibleVersion(live, epoch_v1 - 1), nullptr);

  // A deleted row is invisible at later epochs, visible at earlier ones.
  ASSERT_TRUE(t->Delete(rowid, db.NextStatementSeq()).ok());
  const int64_t epoch_v3 = db.current_statement_seq();
  const storage::RowVersion& tomb = t->rows()[0];
  EXPECT_EQ(t->VisibleVersion(tomb, epoch_v3), nullptr);
  const storage::RowVersion* before_delete = t->VisibleVersion(tomb, epoch_v2);
  ASSERT_NE(before_delete, nullptr);
  EXPECT_EQ(before_delete->values[0].AsInt(), 2);
}

TEST(TableMvccTest, GcDropsOnlyVersionsNoSnapshotNeeds) {
  Database db;
  db.SetMvccRetention(true);
  auto created = db.CreateTable(
      "t", storage::Schema({storage::Column{"x", storage::ValueType::kInt64}}));
  ASSERT_TRUE(created.ok());
  Table* t = *created;
  auto inserted = t->Insert({storage::Value::Int(0)}, db.NextStatementSeq());
  ASSERT_TRUE(inserted.ok());
  const int64_t pinned = db.current_statement_seq();
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(
        t->Update(*inserted, {storage::Value::Int(i)}, db.NextStatementSeq())
            .ok());
  }
  ASSERT_EQ(t->archive().size(), 5u);

  // A snapshot at `pinned` still needs every pre-image archived after it.
  EXPECT_EQ(t->GcArchive(pinned), 0u);
  EXPECT_EQ(t->archive().size(), 5u);

  // With the watermark at the latest epoch everything is reclaimable.
  EXPECT_EQ(t->GcArchive(db.current_statement_seq()), 5u);
  EXPECT_EQ(t->archive().size(), 0u);
}

TEST(TableMvccTest, TrackedTablesAreNeverGced) {
  Database db;
  auto created = db.CreateTable(
      "t", storage::Schema({storage::Column{"x", storage::ValueType::kInt64}}));
  ASSERT_TRUE(created.ok());
  Table* t = *created;
  t->set_provenance_tracking(true);
  auto inserted = t->Insert({storage::Value::Int(0)}, db.NextStatementSeq());
  ASSERT_TRUE(inserted.ok());
  ASSERT_TRUE(
      t->Update(*inserted, {storage::Value::Int(1)}, db.NextStatementSeq())
          .ok());
  ASSERT_EQ(t->archive().size(), 1u);
  // Reenactment needs the full archive; GC must refuse.
  EXPECT_EQ(t->GcArchive(db.current_statement_seq()), 0u);
  EXPECT_EQ(t->archive().size(), 1u);
}

// ---------------------------------------------------------------------------
// EngineHandle: snapshot-isolated reads
// ---------------------------------------------------------------------------

TEST(MvccEngineTest, SnapshotReadDoesNotWaitForOpenTransaction) {
  Database db;
  EngineHandle engine(&db);
  // Make "waited for the transaction" loud: the old serialized path would
  // time out after 100 ms with an engine-busy error.
  engine.set_txn_wait_millis(100);
  ASSERT_TRUE(Exec(&engine, 0, "CREATE TABLE t (x INT)").ok());
  ASSERT_TRUE(Exec(&engine, 0, "INSERT INTO t VALUES (1), (2), (3)").ok());

  ASSERT_TRUE(Exec(&engine, 1, "BEGIN").ok());
  ASSERT_TRUE(Exec(&engine, 1, "INSERT INTO t VALUES (99)").ok());

  // Another session reads concurrently: committed state, immediately.
  const int64_t t0 = NowNanos();
  EXPECT_EQ(SingleInt(Exec(&engine, 2, "SELECT count(*) FROM t")), 3);
  EXPECT_LT((NowNanos() - t0) / 1'000'000, 100);

  // The owner reads its own uncommitted write.
  EXPECT_EQ(SingleInt(Exec(&engine, 1, "SELECT count(*) FROM t")), 4);

  ASSERT_TRUE(Exec(&engine, 1, "COMMIT").ok());
  EXPECT_EQ(SingleInt(Exec(&engine, 2, "SELECT count(*) FROM t")), 4);
}

TEST(MvccEngineTest, RolledBackWritesNeverBecomeVisible) {
  Database db;
  EngineHandle engine(&db);
  ASSERT_TRUE(Exec(&engine, 0, "CREATE TABLE t (x INT)").ok());
  ASSERT_TRUE(Exec(&engine, 0, "INSERT INTO t VALUES (10), (20)").ok());

  ASSERT_TRUE(Exec(&engine, 1, "BEGIN").ok());
  ASSERT_TRUE(Exec(&engine, 1, "UPDATE t SET x = x + 100").ok());
  EXPECT_EQ(SingleInt(Exec(&engine, 2, "SELECT sum(x) FROM t")), 30);
  ASSERT_TRUE(Exec(&engine, 1, "ROLLBACK").ok());
  EXPECT_EQ(SingleInt(Exec(&engine, 2, "SELECT sum(x) FROM t")), 30);
  EXPECT_EQ(SingleInt(Exec(&engine, 2, "SELECT count(*) FROM t")), 2);
}

TEST(MvccEngineTest, ConcurrentReadsMatchSerialResultsBitForBit) {
  Database db;
  EngineHandle engine(&db);
  ASSERT_TRUE(Exec(&engine, 0, "CREATE TABLE big (id INT, grp INT, val INT)")
                  .ok());
  for (int base = 0; base < 2000; base += 500) {
    std::string sql = "INSERT INTO big VALUES ";
    for (int i = base; i < base + 500; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 13) + "," +
             std::to_string(i % 7) + ")";
    }
    ASSERT_TRUE(Exec(&engine, 0, sql).ok());
  }
  const std::string query =
      "SELECT grp, count(*), sum(val) FROM big GROUP BY grp ORDER BY grp";
  Result<exec::ResultSet> serial = Exec(&engine, 0, query);
  ASSERT_TRUE(serial.ok());
  const uint64_t expected = serial->Fingerprint();

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int iter = 0; iter < 5; ++iter) {
        Result<exec::ResultSet> result = Exec(&engine, 10 + i, query);
        if (!result.ok()) {
          ++failures;
          return;
        }
        if (result->Fingerprint() != expected) ++mismatches;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(MvccEngineTest, ReadersObserveMonotonicCountsUnderAWriter) {
  Database db;
  EngineHandle engine(&db);
  ASSERT_TRUE(Exec(&engine, 0, "CREATE TABLE t (x INT)").ok());

  constexpr int kInserts = 150;
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    for (int i = 0; i < kInserts; ++i) {
      if (!Exec(&engine, 1, "INSERT INTO t VALUES (" + std::to_string(i) + ")")
               .ok()) {
        ++failures;
        break;
      }
    }
    done.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      int64_t last = 0;
      while (!done.load()) {
        Result<exec::ResultSet> result =
            Exec(&engine, 10 + r, "SELECT count(*) FROM t");
        if (!result.ok()) {
          ++failures;
          return;
        }
        const int64_t count = result->rows[0][0].AsInt();
        // Committed state only ever grows here; a shrinking count would
        // mean a reader saw a half-applied statement.
        if (count < last || count > kInserts) ++violations;
        last = count;
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(SingleInt(Exec(&engine, 0, "SELECT count(*) FROM t")), kInserts);
}

TEST(MvccEngineTest, TransfersPreserveTheSumUnderSnapshotReads) {
  Database db;
  EngineHandle engine(&db);
  ASSERT_TRUE(Exec(&engine, 0, "CREATE TABLE accounts (id INT, bal INT)").ok());
  constexpr int kAccounts = 8;
  constexpr int64_t kTotal = kAccounts * 100;
  {
    std::string sql = "INSERT INTO accounts VALUES ";
    for (int i = 0; i < kAccounts; ++i) {
      if (i != 0) sql += ",";
      sql += "(" + std::to_string(i) + ",100)";
    }
    ASSERT_TRUE(Exec(&engine, 0, sql).ok());
  }

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    for (int i = 0; i < 40; ++i) {
      const int from = i % kAccounts;
      const int to = (i + 3) % kAccounts;
      if (!Exec(&engine, 1, "BEGIN").ok()) ++failures;
      (void)Exec(&engine, 1,
                 "UPDATE accounts SET bal = bal - 5 WHERE id = " +
                     std::to_string(from));
      (void)Exec(&engine, 1,
                 "UPDATE accounts SET bal = bal + 5 WHERE id = " +
                     std::to_string(to));
      // Every third transfer aborts: rolled-back halves must never be seen.
      const char* end = (i % 3 == 2) ? "ROLLBACK" : "COMMIT";
      if (!Exec(&engine, 1, end).ok()) ++failures;
    }
    done.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      while (!done.load()) {
        Result<exec::ResultSet> result =
            Exec(&engine, 10 + r, "SELECT sum(bal) FROM accounts");
        if (!result.ok()) {
          ++failures;
          return;
        }
        // Snapshot isolation: a reader sees whole transactions or nothing —
        // the invariant SUM(bal) == kTotal holds at every epoch.
        if (result->rows[0][0].AsInt() != kTotal) ++violations;
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(SingleInt(Exec(&engine, 0, "SELECT sum(bal) FROM accounts")),
            kTotal);
}

TEST(MvccEngineTest, DdlExcludesButNeverCorruptsConcurrentReaders) {
  Database db;
  EngineHandle engine(&db);
  ASSERT_TRUE(Exec(&engine, 0, "CREATE TABLE stable (x INT)").ok());
  ASSERT_TRUE(Exec(&engine, 0, "INSERT INTO stable VALUES (1), (2)").ok());

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::thread ddl([&] {
    for (int i = 0; i < 25; ++i) {
      const std::string name = "tmp_" + std::to_string(i);
      if (!Exec(&engine, 1, "CREATE TABLE " + name + " (y INT)").ok()) {
        ++failures;
      }
      if (!Exec(&engine, 1, "DROP TABLE " + name).ok()) ++failures;
    }
    done.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      while (!done.load()) {
        Result<exec::ResultSet> result =
            Exec(&engine, 10 + r, "SELECT count(*) FROM stable");
        if (!result.ok() || result->rows[0][0].AsInt() != 2) ++failures;
      }
    });
  }
  ddl.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// Snapshot GC
// ---------------------------------------------------------------------------

TEST(MvccEngineTest, ArchiveStaysBoundedUnderAutocommitUpdates) {
  Database db;
  EngineHandle engine(&db);
  ASSERT_TRUE(Exec(&engine, 0, "CREATE TABLE t (x INT)").ok());
  ASSERT_TRUE(Exec(&engine, 0, "INSERT INTO t VALUES (0)").ok());
  for (int i = 1; i <= 50; ++i) {
    ASSERT_TRUE(
        Exec(&engine, 0, "UPDATE t SET x = " + std::to_string(i)).ok());
  }
  // With no live snapshot, every statement's GC reclaims the pre-images the
  // statement archived; the archive never accumulates.
  Table* t = db.FindTable("t");
  ASSERT_NE(t, nullptr);
  EXPECT_LE(t->archive().size(), 1u);
}

TEST(MvccEngineTest, LiveSnapshotPinsArchiveUntilReleased) {
  Database db;
  EngineHandle engine(&db);
  ASSERT_TRUE(Exec(&engine, 0, "CREATE TABLE t (x INT)").ok());
  ASSERT_TRUE(Exec(&engine, 0, "INSERT INTO t VALUES (0)").ok());

  const int64_t pinned = engine.snapshots()->AcquireSnapshot();
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(
        Exec(&engine, 0, "UPDATE t SET x = " + std::to_string(i)).ok());
  }
  Table* t = db.FindTable("t");
  ASSERT_NE(t, nullptr);
  // The pinned snapshot may still need every one of those pre-images.
  EXPECT_GE(t->archive().size(), 19u);

  engine.snapshots()->ReleaseSnapshot(pinned);
  ASSERT_TRUE(Exec(&engine, 0, "UPDATE t SET x = 21").ok());
  EXPECT_LE(t->archive().size(), 1u);
}

// ---------------------------------------------------------------------------
// Socket server: inter-query parallelism + stress
// ---------------------------------------------------------------------------

class MvccSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("mvcc_socket");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)RemoveAll(dir_); }

  std::string dir_;
};

TEST_F(MvccSocketTest, LongSelectsOverlapAcrossConnections) {
  Database db;
  EngineHandle engine(&db);
  LocalDbClient local(&engine);
  ASSERT_TRUE(local.Query("CREATE TABLE big (id INT, val INT)").ok());
  for (int base = 0; base < 2000; base += 500) {
    std::string sql = "INSERT INTO big VALUES ";
    for (int i = base; i < base + 500; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 7) + ")";
    }
    ASSERT_TRUE(local.Query(sql).ok());
  }

  const std::string path = dir_ + "/db.sock";
  DbServer server(&engine, path, DbServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  // A cross join with an unsatisfiable predicate: long-running, zero rows.
  const std::string heavy =
      "SELECT count(*) FROM big a, big b WHERE a.val + b.val < -1";
  obs::Counter* concurrent =
      obs::MetricsRegistry::Global().counter("engine.concurrent_reads");
  const int64_t reads_before = concurrent->Value();

  struct Interval {
    int64_t start = 0;
    int64_t end = 0;
  };
  Interval intervals[2];
  std::atomic<bool> go{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&, i] {
      auto client = SocketDbClient::Connect(path);
      if (!client.ok()) {
        ++failures;
        return;
      }
      while (!go.load()) std::this_thread::yield();
      intervals[i].start = NowNanos();
      Result<exec::ResultSet> result = (*client)->Query(heavy);
      intervals[i].end = NowNanos();
      if (!result.ok() || result->rows[0][0].AsInt() != 0) ++failures;
    });
  }
  go.store(true);
  for (auto& t : threads) t.join();
  server.Stop();

  ASSERT_EQ(failures.load(), 0);
  // Verified wall-clock overlap: each statement started before the other
  // finished. A serialized engine cannot produce this.
  EXPECT_LT(intervals[0].start, intervals[1].end);
  EXPECT_LT(intervals[1].start, intervals[0].end);
  EXPECT_GE(concurrent->Value() - reads_before, 2);
}

TEST_F(MvccSocketTest, MixedReadWriteStressOverSockets) {
  Database db;
  EngineHandle engine(&db);
  LocalDbClient local(&engine);
  ASSERT_TRUE(local.Query("CREATE TABLE t (x INT)").ok());

  const std::string path = dir_ + "/db.sock";
  DbServer server(&engine, path, DbServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  constexpr int kWriters = 2;
  constexpr int kPerWriter = 40;
  std::atomic<int> writers_done{0};
  std::atomic<int> failures{0};
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto client = SocketDbClient::Connect(path);
      if (!client.ok()) {
        ++failures;
        ++writers_done;
        return;
      }
      for (int i = 0; i < kPerWriter; ++i) {
        if (!(*client)
                 ->Query("INSERT INTO t VALUES (" +
                         std::to_string(w * kPerWriter + i) + ")")
                 .ok()) {
          ++failures;
          break;
        }
      }
      ++writers_done;
    });
  }
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&] {
      auto client = SocketDbClient::Connect(path);
      if (!client.ok()) {
        ++failures;
        return;
      }
      int64_t last = 0;
      while (writers_done.load() < kWriters) {
        Result<exec::ResultSet> result =
            (*client)->Query("SELECT count(*) FROM t");
        if (!result.ok()) {
          ++failures;
          return;
        }
        const int64_t count = result->rows[0][0].AsInt();
        if (count < last || count > kWriters * kPerWriter) ++violations;
        last = count;
      }
    });
  }
  for (auto& t : threads) t.join();
  Result<exec::ResultSet> final_count = local.Query("SELECT count(*) FROM t");
  server.Stop();
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(final_count->rows[0][0].AsInt(), kWriters * kPerWriter);
}

// ---------------------------------------------------------------------------
// DbServer satellites: dedup TTL/LRU, disconnect poll interval
// ---------------------------------------------------------------------------

TEST_F(MvccSocketTest, DedupCacheIsLruBounded) {
  Database db;
  EngineHandle engine(&db);
  LocalDbClient local(&engine);
  ASSERT_TRUE(local.Query("CREATE TABLE t (x INT)").ok());

  const std::string path = dir_ + "/db.sock";
  DbServerOptions options;
  options.dedup_capacity = 2;
  options.dedup_ttl_millis = 0;  // LRU only
  DbServer server(&engine, path, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = SocketDbClient::Connect(path);
  ASSERT_TRUE(client.ok());

  auto insert = [&](int64_t qid) {
    DbRequest request;
    request.process_id = 7;
    request.query_id = qid;
    request.sql = "INSERT INTO t VALUES (" + std::to_string(qid) + ")";
    return (*client)->Execute(request);
  };
  ASSERT_TRUE(insert(1).ok());
  ASSERT_TRUE(insert(2).ok());
  EXPECT_EQ(server.dedup_entries(), 2);

  // Replaying qid=1 refreshes it (LRU), so qid=3 evicts qid=2 instead.
  ASSERT_TRUE(insert(1).ok());
  EXPECT_EQ(server.deduped_requests(), 1);
  ASSERT_TRUE(insert(3).ok());
  EXPECT_EQ(server.dedup_entries(), 2);

  // qid=1 still cached: its retry is answered, no double insert.
  ASSERT_TRUE(insert(1).ok());
  EXPECT_EQ(server.deduped_requests(), 2);
  // qid=2 was evicted: its retry re-executes (a second row appears).
  ASSERT_TRUE(insert(2).ok());
  EXPECT_EQ(server.deduped_requests(), 2);
  Result<exec::ResultSet> count = local.Query("SELECT count(*) FROM t");
  server.Stop();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), 4);  // qids 1,2,3 + re-executed 2
}

TEST_F(MvccSocketTest, DedupEntriesExpireAfterIdleTtl) {
  Database db;
  EngineHandle engine(&db);
  LocalDbClient local(&engine);
  ASSERT_TRUE(local.Query("CREATE TABLE t (x INT)").ok());

  const std::string path = dir_ + "/db.sock";
  DbServerOptions options;
  options.dedup_ttl_millis = 50;
  DbServer server(&engine, path, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = SocketDbClient::Connect(path);
  ASSERT_TRUE(client.ok());

  DbRequest request;
  request.process_id = 9;
  request.query_id = 1;
  request.sql = "INSERT INTO t VALUES (1)";
  ASSERT_TRUE((*client)->Execute(request).ok());
  EXPECT_EQ(server.dedup_entries(), 1);

  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  // Past the idle TTL the entry is purged, so the retry executes afresh.
  ASSERT_TRUE((*client)->Execute(request).ok());
  EXPECT_EQ(server.deduped_requests(), 0);
  Result<exec::ResultSet> count = local.Query("SELECT count(*) FROM t");
  server.Stop();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), 2);
}

TEST_F(MvccSocketTest, DisconnectWatcherHonorsConfiguredPollInterval) {
  Database db;
  EngineHandle engine(&db);
  LocalDbClient local(&engine);
  ASSERT_TRUE(local.Query("CREATE TABLE big (id INT, val INT)").ok());
  for (int base = 0; base < 2000; base += 500) {
    std::string sql = "INSERT INTO big VALUES ";
    for (int i = base; i < base + 500; ++i) {
      if (i != base) sql += ",";
      sql += "(" + std::to_string(i) + "," + std::to_string(i % 7) + ")";
    }
    ASSERT_TRUE(local.Query(sql).ok());
  }

  const std::string path = dir_ + "/db.sock";
  DbServerOptions options;
  options.disconnect_poll_millis = 5;
  DbServer server(&engine, path, options);
  ASSERT_TRUE(server.Start().ok());

  // Fire a heavy statement over a raw connection and hang up without
  // reading the response: the watcher (polling every 5 ms here) must cancel
  // the orphaned statement.
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  strcpy(addr.sun_path, path.c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  DbRequest heavy;
  heavy.sql = "SELECT count(*) FROM big a, big b WHERE a.val + b.val < -1";
  ASSERT_TRUE(SendFrame(fd, EncodeRequest(heavy)).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ::close(fd);

  const int64_t deadline = NowNanos() + 5'000'000'000;
  while (server.disconnect_cancels() == 0 && NowNanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.Stop();
  EXPECT_GE(server.disconnect_cancels(), 1);
}

}  // namespace
}  // namespace ldv::net
