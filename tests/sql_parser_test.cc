#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace ldv::sql {
namespace {

using storage::ValueType;

TEST(LexerTest, TokenKinds) {
  auto tokens = Lex("SELECT a, 42, 4.5, 'str''x' FROM t WHERE a <= 3 AND b <> 4");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_EQ((*tokens)[1].text, "a");
  EXPECT_EQ((*tokens)[3].int_value, 42);
  EXPECT_DOUBLE_EQ((*tokens)[5].double_value, 4.5);
  EXPECT_EQ((*tokens)[7].text, "str'x");
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(LexerTest, CommentsAndErrors) {
  auto tokens = Lex("SELECT 1 -- trailing\n/* block */ FROM t");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens).size(), 5u);  // SELECT 1 FROM t END
  EXPECT_FALSE(Lex("SELECT 'unterminated").ok());
  EXPECT_FALSE(Lex("SELECT /* unterminated").ok());
  EXPECT_FALSE(Lex("SELECT a ! b").ok());
  EXPECT_FALSE(Lex("SELECT #").ok());
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = Parse("SELECT a, b AS bee FROM t WHERE a > 10;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, StatementKind::kSelect);
  EXPECT_FALSE(stmt->provenance);
  const SelectStmt& s = *stmt->select;
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[1].alias, "bee");
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].table, "t");
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.where->ToString(), "(a > 10)");
}

TEST(ParserTest, ProvenancePrefix) {
  auto stmt = Parse("PROVENANCE SELECT * FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->provenance);
  auto dml = Parse("provenance UPDATE t SET a = 1");
  ASSERT_TRUE(dml.ok());
  EXPECT_TRUE(dml->provenance);
  EXPECT_EQ(dml->kind, StatementKind::kUpdate);
}

TEST(ParserTest, ImplicitJoinListAndAliases) {
  auto stmt = Parse(
      "SELECT o_comment, l_comment FROM lineitem l, orders o, customer c "
      "WHERE l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey AND "
      "c.c_name LIKE '%0000%'");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStmt& s = *stmt->select;
  ASSERT_EQ(s.from.size(), 3u);
  EXPECT_EQ(s.from[0].alias, "l");
  EXPECT_EQ(s.from[2].EffectiveName(), "c");
  ASSERT_NE(s.where, nullptr);
}

TEST(ParserTest, ExplicitJoinCarriesOnCondition) {
  auto stmt = Parse(
      "SELECT * FROM a JOIN b ON a.x = b.y WHERE a.z > 1");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStmt& s = *stmt->select;
  ASSERT_EQ(s.from.size(), 2u);
  EXPECT_EQ(s.from[0].join_condition, nullptr);
  ASSERT_NE(s.from[1].join_condition, nullptr);
  EXPECT_EQ(s.from[1].join_type, JoinType::kInner);
  EXPECT_EQ(s.from[1].join_condition->ToString(), "(a.x = b.y)");
  EXPECT_EQ(s.where->ToString(), "(a.z > 1)");
}

TEST(ParserTest, LeftOuterJoin) {
  auto stmt = Parse(
      "SELECT * FROM a LEFT JOIN b ON a.x = b.y LEFT OUTER JOIN c ON "
      "b.z = c.z");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStmt& s = *stmt->select;
  ASSERT_EQ(s.from.size(), 3u);
  EXPECT_EQ(s.from[1].join_type, JoinType::kLeft);
  EXPECT_EQ(s.from[2].join_type, JoinType::kLeft);
}

TEST(ParserTest, Subqueries) {
  auto scalar = Parse("SELECT (SELECT max(x) FROM t2) FROM t1");
  ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
  EXPECT_EQ(scalar->select->items[0].expr->kind, ExprKind::kSubquery);

  auto in = Parse("SELECT a FROM t1 WHERE a IN (SELECT b FROM t2)");
  ASSERT_TRUE(in.ok()) << in.status().ToString();
  EXPECT_EQ(in->select->where->kind, ExprKind::kInList);
  ASSERT_NE(in->select->where->subquery, nullptr);

  auto exists = Parse("SELECT a FROM t1 WHERE EXISTS (SELECT 1 FROM t2)");
  ASSERT_TRUE(exists.ok()) << exists.status().ToString();
  EXPECT_EQ(exists->select->where->kind, ExprKind::kExists);

  auto not_exists =
      Parse("SELECT a FROM t1 WHERE NOT EXISTS (SELECT 1 FROM t2)");
  ASSERT_TRUE(not_exists.ok());

  // Rendering round-trips through the parser.
  auto rendered = Parse(in->select->where->ToString() + " AND 1 = 1");
  EXPECT_FALSE(rendered.ok());  // bare expression is not a statement
  auto reparsed = Parse("SELECT a FROM t1 WHERE " +
                        in->select->where->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
}

TEST(ParserTest, CreateIndex) {
  auto stmt = Parse("CREATE INDEX idx_orders ON orders (o_orderkey)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, StatementKind::kCreateIndex);
  EXPECT_EQ(stmt->create_index->index_name, "idx_orders");
  EXPECT_EQ(stmt->create_index->table, "orders");
  EXPECT_EQ(stmt->create_index->column, "o_orderkey");
  auto idempotent =
      Parse("CREATE INDEX IF NOT EXISTS i ON t (c)");
  ASSERT_TRUE(idempotent.ok());
  EXPECT_TRUE(idempotent->create_index->if_not_exists);
  EXPECT_FALSE(Parse("CREATE INDEX ON t (c)").ok());
}

TEST(ParserTest, SelectToStringRoundTrip) {
  const char* queries[] = {
      "SELECT a, b AS bee FROM t WHERE a > 10 ORDER BY b DESC LIMIT 5",
      "SELECT DISTINCT x FROM t1, t2 WHERE t1.a = t2.b",
      "SELECT count(*) FROM t GROUP BY g HAVING count(*) > 1",
      "SELECT * FROM a LEFT JOIN b ON a.x = b.y WHERE a.z IN (1, 2)",
  };
  for (const char* sql : queries) {
    auto stmt = Parse(sql);
    ASSERT_TRUE(stmt.ok()) << sql;
    std::string rendered = SelectToString(*stmt->select);
    auto reparsed = Parse(rendered);
    ASSERT_TRUE(reparsed.ok()) << rendered;
    EXPECT_EQ(SelectToString(*reparsed->select), rendered) << sql;
  }
}

TEST(ParserTest, GroupByHavingOrderLimit) {
  auto stmt = Parse(
      "SELECT o_orderkey, AVG(l_quantity) AS avgQ FROM lineitem l, orders o "
      "WHERE l.l_orderkey = o.o_orderkey AND l_suppkey BETWEEN 1 AND 100 "
      "GROUP BY o_orderkey HAVING COUNT(*) > 2 "
      "ORDER BY avgQ DESC, o_orderkey LIMIT 10");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStmt& s = *stmt->select;
  ASSERT_EQ(s.group_by.size(), 1u);
  ASSERT_NE(s.having, nullptr);
  ASSERT_EQ(s.order_by.size(), 2u);
  EXPECT_FALSE(s.order_by[0].ascending);
  EXPECT_TRUE(s.order_by[1].ascending);
  EXPECT_EQ(s.limit, 10);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto stmt = Parse("SELECT 1 + 2 * 3 - 4 / 2");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->items[0].expr->ToString(),
            "((1 + (2 * 3)) - (4 / 2))");
  auto logic = Parse("SELECT a OR b AND NOT c = 1");
  ASSERT_TRUE(logic.ok());
  EXPECT_EQ(logic->select->items[0].expr->ToString(),
            "(a OR (b AND NOT ((c = 1))))");
}

TEST(ParserTest, BetweenInLikeNullPredicates) {
  auto stmt = Parse(
      "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b NOT BETWEEN 2 AND 3 "
      "AND c IN (1, 2, 3) AND d NOT IN ('x') AND e LIKE '%z%' AND f NOT "
      "LIKE 'q' AND g IS NULL AND h IS NOT NULL");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
}

TEST(ParserTest, InsertValues) {
  auto stmt = Parse(
      "INSERT INTO orders (o_orderkey, o_comment) VALUES (1, 'a'), (2, 'b')");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const InsertStmt& ins = *stmt->insert;
  EXPECT_EQ(ins.table, "orders");
  ASSERT_EQ(ins.columns.size(), 2u);
  ASSERT_EQ(ins.rows.size(), 2u);
  EXPECT_EQ(ins.rows[1][1]->literal.AsString(), "b");
}

TEST(ParserTest, InsertSelect) {
  auto stmt = Parse("INSERT INTO t2 SELECT a, b FROM t1 WHERE a > 0");
  ASSERT_TRUE(stmt.ok());
  ASSERT_NE(stmt->insert->select, nullptr);
  EXPECT_TRUE(stmt->insert->rows.empty());
}

TEST(ParserTest, UpdateDelete) {
  auto upd = Parse("UPDATE orders SET o_comment = 'x', o_total = o_total + 1 "
                   "WHERE o_orderkey = 7");
  ASSERT_TRUE(upd.ok()) << upd.status().ToString();
  EXPECT_EQ(upd->update->assignments.size(), 2u);
  auto del = Parse("DELETE FROM orders WHERE o_orderkey = 7");
  ASSERT_TRUE(del.ok());
  ASSERT_NE(del->del->where, nullptr);
}

TEST(ParserTest, CreateDropAlterCopy) {
  auto create = Parse(
      "CREATE TABLE IF NOT EXISTS t (id BIGINT, price DECIMAL(12,2), "
      "name VARCHAR(25), day DATE)");
  ASSERT_TRUE(create.ok()) << create.status().ToString();
  const CreateTableStmt& c = *create->create_table;
  EXPECT_TRUE(c.if_not_exists);
  ASSERT_EQ(c.columns.size(), 4u);
  EXPECT_EQ(c.columns[0].type, ValueType::kInt64);
  EXPECT_EQ(c.columns[1].type, ValueType::kDouble);
  EXPECT_EQ(c.columns[2].type, ValueType::kString);
  EXPECT_EQ(c.columns[3].type, ValueType::kString);

  auto drop = Parse("DROP TABLE IF EXISTS t");
  ASSERT_TRUE(drop.ok());
  EXPECT_TRUE(drop->drop_table->if_exists);

  auto alter = Parse("ALTER TABLE t ADD COLUMN prov_rowid BIGINT");
  ASSERT_TRUE(alter.ok());
  EXPECT_EQ(alter->alter_table->column.name, "prov_rowid");

  auto copy = Parse("COPY t FROM '/tmp/data.csv' CSV");
  ASSERT_TRUE(copy.ok());
  EXPECT_TRUE(copy->copy->from);
  EXPECT_EQ(copy->copy->path, "/tmp/data.csv");
}

TEST(ParserTest, Transactions) {
  EXPECT_TRUE(Parse("BEGIN").ok());
  EXPECT_TRUE(Parse("BEGIN TRANSACTION").ok());
  EXPECT_TRUE(Parse("COMMIT WORK").ok());
  EXPECT_TRUE(Parse("ROLLBACK").ok());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("SELECT").ok());
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("INSERT INTO").ok());
  EXPECT_FALSE(Parse("UPDATE t WHERE x = 1").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE a BETWEEN 1").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t; SELECT 1").ok());  // single stmt API
  EXPECT_FALSE(Parse("FROB the table").ok());
}

TEST(ParserTest, ParseScriptSplitsStatements) {
  auto script = ParseScript(
      "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->size(), 3u);
  EXPECT_EQ((*script)[0].kind, StatementKind::kCreateTable);
  EXPECT_EQ((*script)[1].kind, StatementKind::kInsert);
  EXPECT_EQ((*script)[2].kind, StatementKind::kSelect);
}

TEST(ParserTest, CountStarAndQualifiedStar) {
  auto stmt = Parse("SELECT count(*), t.* FROM t");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& items = stmt->select->items;
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].expr->kind, ExprKind::kFuncCall);
  EXPECT_EQ(items[0].expr->name, "COUNT");
  EXPECT_EQ(items[1].expr->kind, ExprKind::kStar);
  EXPECT_EQ(items[1].expr->table, "t");
}

TEST(ParserTest, PlaceholdersNumberPositionally) {
  auto stmt = Parse("SELECT * FROM t WHERE a = ? AND b < ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->num_params, 2);
  const Expr& where = *stmt->select->where;  // AND(a = ?, b < ?)
  const Expr& first = *where.children[0]->children[1];
  const Expr& second = *where.children[1]->children[1];
  EXPECT_EQ(first.kind, ExprKind::kParameter);
  EXPECT_EQ(first.param_index, 0);
  EXPECT_EQ(second.param_index, 1);

  // $N is 1-based in the text, 0-based in the AST, and mixes with `?`:
  // `?` takes the next free slot after the highest index seen so far.
  auto dollar = Parse("SELECT $2, $1, ?");
  ASSERT_TRUE(dollar.ok()) << dollar.status().ToString();
  EXPECT_EQ(dollar->num_params, 3);
  EXPECT_EQ(dollar->select->items[0].expr->param_index, 1);
  EXPECT_EQ(dollar->select->items[1].expr->param_index, 0);
  EXPECT_EQ(dollar->select->items[2].expr->param_index, 2);

  EXPECT_FALSE(Parse("SELECT $0").ok());   // $N is 1-based
  EXPECT_FALSE(Parse("SELECT $x").ok());
  // Placeholders are rejected inside subqueries (the planner would not see
  // them when the outer plan is cached).
  EXPECT_FALSE(
      Parse("SELECT * FROM t WHERE a IN (SELECT b FROM u WHERE c = ?)").ok());
}

TEST(ParserTest, PrepareExecuteDeallocate) {
  auto prep = Parse("PREPARE q AS SELECT * FROM t WHERE a = ?");
  ASSERT_TRUE(prep.ok()) << prep.status().ToString();
  EXPECT_EQ(prep->kind, StatementKind::kPrepare);
  EXPECT_EQ(prep->prepare->name, "q");
  ASSERT_NE(prep->prepare->body, nullptr);
  EXPECT_EQ(prep->prepare->body->kind, StatementKind::kSelect);
  EXPECT_EQ(prep->prepare->body->num_params, 1);
  // The PREPARE wrapper itself has no free placeholders.
  EXPECT_EQ(prep->num_params, 0);

  // DML bodies parse; DDL bodies are rejected at parse time.
  EXPECT_TRUE(Parse("PREPARE i AS INSERT INTO t VALUES (?, ?)").ok());
  EXPECT_TRUE(Parse("PREPARE u AS UPDATE t SET a = ? WHERE b = ?").ok());
  EXPECT_TRUE(Parse("PREPARE d AS DELETE FROM t WHERE a = ?").ok());
  EXPECT_FALSE(Parse("PREPARE c AS CREATE TABLE u (x INT)").ok());
  EXPECT_FALSE(Parse("PREPARE b AS BEGIN").ok());
  EXPECT_FALSE(Parse("PREPARE q").ok());

  auto exec = Parse("EXECUTE q (1, 'x', 2.5, NULL)");
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec->kind, StatementKind::kExecute);
  EXPECT_EQ(exec->execute->name, "q");
  EXPECT_EQ(exec->execute->args.size(), 4u);
  EXPECT_TRUE(Parse("EXECUTE q").ok());  // zero-arg form, no parens
  // Arguments are constant expressions; a placeholder there is an error.
  EXPECT_FALSE(Parse("EXECUTE q (?)").ok());

  auto dealloc = Parse("DEALLOCATE PREPARE q");
  ASSERT_TRUE(dealloc.ok());
  EXPECT_EQ(dealloc->kind, StatementKind::kDeallocate);
  EXPECT_EQ(dealloc->deallocate->name, "q");
  EXPECT_FALSE(dealloc->deallocate->all);
  auto all = Parse("DEALLOCATE ALL");
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->deallocate->all);
}

TEST(ParserTest, PreparedStatementsRoundTripThroughToString) {
  // StatementToString renders placeholders as $N; the rendering re-parses to
  // the same shape (this is what the plan cache fingerprints).
  auto stmt = Parse("SELECT a FROM t WHERE a = ? AND b < ?");
  ASSERT_TRUE(stmt.ok());
  const std::string text = StatementToString(*stmt);
  auto again = Parse(text);
  ASSERT_TRUE(again.ok()) << text << ": " << again.status().ToString();
  EXPECT_EQ(again->num_params, 2);
  EXPECT_EQ(StatementToString(*again), text);
}

TEST(ParserTest, ExprCloneIsDeep) {
  auto stmt = Parse("SELECT (a + 1) * 2 FROM t WHERE b BETWEEN 1 AND 9");
  ASSERT_TRUE(stmt.ok());
  auto clone = stmt->select->where->Clone();
  EXPECT_EQ(clone->ToString(), stmt->select->where->ToString());
  EXPECT_NE(clone.get(), stmt->select->where.get());
}

}  // namespace
}  // namespace ldv::sql
