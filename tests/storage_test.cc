#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/persistence.h"
#include "util/fsutil.h"

namespace ldv::storage {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(5).AsInt(), 5);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Value::Int(2).AsDouble(), 2.0);  // widening
  EXPECT_EQ(Value::Str("x").AsString(), "x");
  EXPECT_TRUE(Value::Int(1).IsTruthy());
  EXPECT_FALSE(Value::Int(0).IsTruthy());
  EXPECT_FALSE(Value::Null().IsTruthy());
}

TEST(ValueTest, CompareWithCoercion) {
  EXPECT_EQ(*Value::Int(1).Compare(Value::Int(2)), -1);
  EXPECT_EQ(*Value::Int(2).Compare(Value::Real(2.0)), 0);
  EXPECT_EQ(*Value::Real(3.5).Compare(Value::Int(3)), 1);
  EXPECT_EQ(*Value::Str("abc").Compare(Value::Str("abd")), -1);
  EXPECT_FALSE(Value::Str("1").Compare(Value::Int(1)).ok());
  EXPECT_EQ(*Value::Null().Compare(Value::Int(0)), -1);  // NULLs sort first
}

TEST(ValueTest, TextRoundTrip) {
  EXPECT_EQ(Value::Int(42).ToText(), "42");
  EXPECT_EQ(Value::Str("1996-01-02").ToText(), "1996-01-02");
  auto v = Value::FromText(ValueType::kInt64, "42");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 42);
  auto d = Value::FromText(ValueType::kDouble, "2.25");
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->AsDouble(), 2.25);
  // Empty numeric text parses to NULL (CSV convention).
  EXPECT_TRUE(Value::FromText(ValueType::kInt64, "")->is_null());
  EXPECT_EQ(Value::FromText(ValueType::kString, "")->AsString(), "");
  EXPECT_FALSE(Value::FromText(ValueType::kInt64, "zz").ok());
}

TEST(ValueTest, SerializeRoundTrip) {
  BufferWriter w;
  Value::Null().Serialize(&w);
  Value::Int(-9).Serialize(&w);
  Value::Real(1.5).Serialize(&w);
  Value::Str("hello").Serialize(&w);
  BufferReader r(w.data());
  EXPECT_TRUE(Value::Deserialize(&r)->is_null());
  EXPECT_EQ(Value::Deserialize(&r)->AsInt(), -9);
  EXPECT_DOUBLE_EQ(Value::Deserialize(&r)->AsDouble(), 1.5);
  EXPECT_EQ(Value::Deserialize(&r)->AsString(), "hello");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Int(7).Hash());
  EXPECT_EQ(Value::Str("a").Hash(), Value::Str("a").Hash());
  EXPECT_NE(Value::Int(7), Value::Real(7.0));  // structural equality
}

TEST(SchemaTest, LookupAndAddColumn) {
  Schema s({{"id", ValueType::kInt64}, {"name", ValueType::kString}});
  EXPECT_EQ(s.num_columns(), 2);
  EXPECT_EQ(s.IndexOf("NAME"), 1);  // case-insensitive
  EXPECT_EQ(s.IndexOf("missing"), -1);
  EXPECT_TRUE(s.AddColumn({"price", ValueType::kDouble}).ok());
  EXPECT_FALSE(s.AddColumn({"ID", ValueType::kInt64}).ok());
  EXPECT_EQ(s.ToString(), "id INT, name TEXT, price DOUBLE");
}

TEST(SchemaTest, ProvPseudoColumns) {
  EXPECT_TRUE(IsProvPseudoColumn("prov_rowid"));
  EXPECT_TRUE(IsProvPseudoColumn("PROV_V"));
  EXPECT_TRUE(IsProvPseudoColumn("prov_usedby"));
  EXPECT_TRUE(IsProvPseudoColumn("prov_p"));
  EXPECT_FALSE(IsProvPseudoColumn("rowid"));
}

class TableTest : public ::testing::Test {
 protected:
  TableTest()
      : table_(1, "t", Schema({{"id", ValueType::kInt64},
                               {"name", ValueType::kString}})) {}
  Table table_;
};

TEST_F(TableTest, InsertFindDelete) {
  auto r1 = table_.Insert({Value::Int(1), Value::Str("a")}, 10);
  ASSERT_TRUE(r1.ok());
  auto r2 = table_.Insert({Value::Int(2), Value::Str("b")}, 10);
  ASSERT_TRUE(r2.ok());
  EXPECT_NE(*r1, *r2);
  EXPECT_EQ(table_.live_row_count(), 2);

  const RowVersion* row = table_.Find(*r1);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->values[1].AsString(), "a");
  EXPECT_EQ(row->version, 10);

  ASSERT_TRUE(table_.Delete(*r1, 11).ok());
  EXPECT_EQ(table_.Find(*r1), nullptr);
  EXPECT_EQ(table_.live_row_count(), 1);
  EXPECT_FALSE(table_.Delete(*r1, 12).ok());  // already gone
}

TEST_F(TableTest, InsertArityChecked) {
  EXPECT_FALSE(table_.Insert({Value::Int(1)}, 1).ok());
}

TEST_F(TableTest, UpdateArchivesOldVersionWhenTracking) {
  table_.set_provenance_tracking(true);
  auto rid = table_.Insert({Value::Int(1), Value::Str("old")}, 5);
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(table_.Update(*rid, {Value::Int(1), Value::Str("new")}, 6).ok());
  const RowVersion* live = table_.Find(*rid);
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(live->values[1].AsString(), "new");
  EXPECT_EQ(live->version, 6);
  ASSERT_EQ(table_.archive().size(), 1u);
  EXPECT_EQ(table_.archive()[0].values[1].AsString(), "old");

  // FindVersion resolves both the live and the archived version.
  EXPECT_NE(table_.FindVersion(*rid, 6), nullptr);
  const RowVersion* old_version = table_.FindVersion(*rid, 5);
  ASSERT_NE(old_version, nullptr);
  EXPECT_EQ(old_version->values[1].AsString(), "old");
  EXPECT_EQ(table_.FindVersion(*rid, 99), nullptr);
}

TEST_F(TableTest, NoArchiveWithoutTracking) {
  auto rid = table_.Insert({Value::Int(1), Value::Str("old")}, 5);
  ASSERT_TRUE(table_.Update(*rid, {Value::Int(1), Value::Str("new")}, 6).ok());
  EXPECT_TRUE(table_.archive().empty());
}

TEST_F(TableTest, AddColumnBackfills) {
  auto rid = table_.Insert({Value::Int(1), Value::Str("a")}, 1);
  ASSERT_TRUE(
      table_.AddColumn({"extra", ValueType::kDouble}, Value::Null()).ok());
  const RowVersion* row = table_.Find(*rid);
  ASSERT_EQ(row->values.size(), 3u);
  EXPECT_TRUE(row->values[2].is_null());
}

TEST_F(TableTest, RestoreRowKeepsIdentity) {
  RowVersion row;
  row.rowid = 42;
  row.version = 7;
  row.values = {Value::Int(1), Value::Str("x")};
  ASSERT_TRUE(table_.RestoreRow(row).ok());
  EXPECT_FALSE(table_.RestoreRow(row).ok());  // duplicate rowid
  const RowVersion* found = table_.Find(42);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->version, 7);
  // Next insert gets a fresh rowid above the restored one.
  auto rid = table_.Insert({Value::Int(2), Value::Str("y")}, 8);
  EXPECT_GT(*rid, 42);
}

TEST(DatabaseTest, CatalogOperations) {
  Database db;
  auto t1 = db.CreateTable("orders", Schema({{"id", ValueType::kInt64}}));
  ASSERT_TRUE(t1.ok());
  EXPECT_FALSE(db.CreateTable("ORDERS", Schema{}).ok());
  EXPECT_TRUE(db.CreateTable("orders", Schema{}, true).ok());
  EXPECT_EQ(db.FindTable("Orders"), *t1);
  EXPECT_EQ(db.FindTableById((*t1)->id()), *t1);
  EXPECT_EQ(db.FindTable("none"), nullptr);
  EXPECT_EQ(db.TableNames(), std::vector<std::string>{"orders"});
  EXPECT_TRUE(db.DropTable("orders").ok());
  EXPECT_FALSE(db.DropTable("orders").ok());
}

TEST(DatabaseTest, StatementSeqMonotone) {
  Database db;
  EXPECT_EQ(db.NextStatementSeq(), 1);
  EXPECT_EQ(db.NextStatementSeq(), 2);
  EXPECT_EQ(db.current_statement_seq(), 2);
}

TEST(PersistenceTest, SaveLoadRoundTrip) {
  Database db;
  auto table = db.CreateTable(
      "t", Schema({{"id", ValueType::kInt64},
                   {"price", ValueType::kDouble},
                   {"name", ValueType::kString}}));
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*table)
                    ->Insert({Value::Int(i), Value::Real(i * 0.5),
                              Value::Str("row" + std::to_string(i))},
                             db.NextStatementSeq())
                    .ok());
  }
  ASSERT_TRUE((*table)->Delete(5, db.NextStatementSeq()).ok());

  auto dir = MakeTempDir("ldv_persist_");
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(SaveDatabase(db, *dir).ok());

  Database restored;
  ASSERT_TRUE(LoadDatabase(&restored, *dir).ok());
  Table* rt = restored.FindTable("t");
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->live_row_count(), 99);
  EXPECT_EQ(rt->schema().ToString(), (*table)->schema().ToString());
  const RowVersion* row = rt->Find(10);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->values[2].AsString(), "row9");  // rowids start at 1
  EXPECT_EQ(restored.current_statement_seq(), db.current_statement_seq());
  ASSERT_TRUE(RemoveAll(*dir).ok());
}

}  // namespace
}  // namespace ldv::storage
