#include <gtest/gtest.h>

#include <set>

#include "ldv/auditor.h"
#include "ldv/replayer.h"
#include "net/db_server.h"
#include "trace/inference.h"
#include "trace/serialize.h"
#include "util/csv.h"
#include "util/fsutil.h"
#include "util/rng.h"
#include "util/strings.h"

namespace ldv {
namespace {

using storage::Database;
using storage::Value;
using storage::ValueType;

/// Fixture: a small pre-existing "server" database plus a deterministic
/// application exercising files + inserts + selects + updates — a compact
/// version of the paper's Figure 1 scenario.
class AuditReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("ldv_e2e_");
    ASSERT_TRUE(dir.ok());
    base_ = *dir;
    PopulateDb();
    // Sandbox input file.
    ASSERT_TRUE(WriteStringToFile(base_ + "/sandbox/input/config.txt",
                                  "threshold=50\n")
                    .ok());
  }

  void TearDown() override { ASSERT_TRUE(RemoveAll(base_).ok()); }

  void PopulateDb() {
    db_ = std::make_unique<Database>();
    auto items = db_->CreateTable("items", storage::Schema({
                                               {"id", ValueType::kInt64},
                                               {"val", ValueType::kInt64},
                                               {"tag", ValueType::kString},
                                           }));
    ASSERT_TRUE(items.ok());
    int64_t seq = db_->NextStatementSeq();
    for (int i = 1; i <= 10; ++i) {
      ASSERT_TRUE((*items)
                      ->Insert({Value::Int(i), Value::Int(i * 10),
                                Value::Str("pre")},
                               seq)
                      .ok());
    }
  }

  /// The test application: reads config, inserts a row, queries twice,
  /// updates a row, queries the inserted row, writes an output digest.
  static AppFn TestApp(uint64_t* fingerprint_out) {
    return [fingerprint_out](AppEnv& env) -> Status {
      os::ProcessContext& proc = env.root_process();
      LDV_ASSIGN_OR_RETURN(std::string config,
                           proc.ReadFile("/input/config.txt"));
      LDV_ASSIGN_OR_RETURN(net::DbClient * db, env.OpenDbConnection(proc));
      LDV_RETURN_IF_ERROR(
          db->Query("INSERT INTO items VALUES (100, 1000, 'new')").status());
      uint64_t fp = 0;
      for (int i = 0; i < 2; ++i) {
        LDV_ASSIGN_OR_RETURN(
            exec::ResultSet r,
            db->Query(
                "SELECT id, val FROM items WHERE val BETWEEN 50 AND 80"));
        fp ^= r.Fingerprint();
      }
      LDV_RETURN_IF_ERROR(
          db->Query("UPDATE items SET val = val + 1 WHERE id = 3").status());
      LDV_ASSIGN_OR_RETURN(
          exec::ResultSet after,
          db->Query("SELECT val FROM items WHERE id = 3 OR id = 100"));
      fp ^= after.Fingerprint() << 1;
      LDV_RETURN_IF_ERROR(proc.WriteFile(
          "/output/result.txt",
          "config=" + std::string(Trim(config)) + " fp=" + std::to_string(fp)));
      if (fingerprint_out != nullptr) *fingerprint_out = fp;
      return Status::Ok();
    };
  }

  AuditOptions Options(PackageMode mode, const std::string& name) {
    AuditOptions options;
    options.mode = mode;
    options.package_dir = base_ + "/packages/" + name;
    options.sandbox_root = base_ + "/sandbox";
    options.vm_base_image_bytes = 1 << 20;
    return options;
  }

  Result<ReplayReport> ReplayPackage(const std::string& name,
                                     const AppFn& app,
                                     std::string* scratch_out = nullptr) {
    ReplayOptions options;
    options.package_dir = base_ + "/packages/" + name;
    options.scratch_dir = base_ + "/scratch/" + name;
    if (scratch_out != nullptr) *scratch_out = options.scratch_dir;
    LDV_ASSIGN_OR_RETURN(std::unique_ptr<Replayer> replayer,
                         Replayer::Open(options));
    return replayer->Run(app);
  }

  std::string base_;
  std::unique_ptr<Database> db_;
};

TEST_F(AuditReplayTest, ServerIncludedPackagesOnlyRelevantTuples) {
  uint64_t original_fp = 0;
  Auditor auditor(db_.get(), Options(PackageMode::kServerIncluded, "inc"));
  auto report = auditor.Run(TestApp(&original_fp));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->statements_audited, 0);

  // Packaged tuples: rowids 5..8 (val 50..80), rowid 3 (update prior).
  auto csv = ReadFileToString(base_ + "/packages/inc/db/data/items.csv");
  ASSERT_TRUE(csv.ok());
  auto rows = ParseCsv(*csv);
  ASSERT_TRUE(rows.ok());
  std::set<int64_t> rowids;
  for (const auto& fields : *rows) rowids.insert(*ParseInt64(fields[0]));
  EXPECT_EQ(rowids, (std::set<int64_t>{3, 5, 6, 7, 8}));
  EXPECT_EQ(report->tuples_persisted, 5);

  // Exclusions (paper §II): untouched tuples (t2 analog: rowids 1,2,4,9,10)
  // and application-created tuples (t3 analog: the id=100 insert and the
  // new version of id=3) are not in the package.
  EXPECT_FALSE(rowids.contains(1));
  EXPECT_FALSE(rowids.contains(11));  // rowid of the id=100 insert

  // Input file packaged; app-written output not packaged.
  EXPECT_TRUE(
      FileExists(base_ + "/packages/inc/files/input/config.txt"));
  EXPECT_FALSE(
      FileExists(base_ + "/packages/inc/files/output/result.txt"));

  // Manifest sanity.
  auto manifest = PackageManifest::Load(base_ + "/packages/inc");
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->mode, PackageMode::kServerIncluded);
  EXPECT_TRUE(manifest->has_server_binary);
  EXPECT_FALSE(manifest->has_full_data);
  ASSERT_EQ(manifest->tables.size(), 1u);
  EXPECT_EQ(manifest->tables[0].name, "items");
  EXPECT_EQ(manifest->tables[0].rows, 5);
}

TEST_F(AuditReplayTest, StreamingPackagerAgreesWithInferenceEngine) {
  // The §VII-D streaming persistence path and the Definition 11 inference
  // engine must select the same relevant tuple versions.
  Auditor auditor(db_.get(), Options(PackageMode::kServerIncluded, "agree"));
  ASSERT_TRUE(auditor.Run(TestApp(nullptr)).ok());

  trace::DependencyAnalyzer analyzer(&auditor.trace_graph());
  std::set<std::string> inferred;
  for (trace::NodeId id : analyzer.RelevantPackageTuples()) {
    inferred.insert(auditor.trace_graph().node(id).label);
  }
  auto csv = ReadFileToString(base_ + "/packages/agree/db/data/items.csv");
  ASSERT_TRUE(csv.ok());
  auto rows = ParseCsv(*csv);
  std::set<std::string> persisted;
  for (const auto& fields : *rows) {
    persisted.insert("items#" + fields[0] + ".v" + fields[1]);
  }
  EXPECT_EQ(inferred, persisted);
}

TEST_F(AuditReplayTest, ServerIncludedReplayIsFaithful) {
  uint64_t original_fp = 0;
  Auditor auditor(db_.get(), Options(PackageMode::kServerIncluded, "inc2"));
  ASSERT_TRUE(auditor.Run(TestApp(&original_fp)).ok());

  uint64_t replay_fp = 0;
  std::string scratch;
  auto report = ReplayPackage("inc2", TestApp(&replay_fp), &scratch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->mode, PackageMode::kServerIncluded);
  EXPECT_EQ(report->restored_tuples, 5);
  EXPECT_EQ(replay_fp, original_fp);
  // The replayed app regenerated its output file in the scratch sandbox.
  auto out = ReadFileToString(scratch + "/output/result.txt");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("threshold=50"), std::string::npos);
}

TEST_F(AuditReplayTest, ServerExcludedReplayNeedsNoDatabase) {
  uint64_t original_fp = 0;
  Auditor auditor(db_.get(), Options(PackageMode::kServerExcluded, "exc"));
  ASSERT_TRUE(auditor.Run(TestApp(&original_fp)).ok());

  auto manifest = PackageManifest::Load(base_ + "/packages/exc");
  ASSERT_TRUE(manifest.ok());
  EXPECT_FALSE(manifest->has_server_binary);
  EXPECT_EQ(manifest->statements_recorded, 5);
  EXPECT_FALSE(FileExists(base_ + "/packages/exc/db/schema.sql"));
  EXPECT_FALSE(DirExists(base_ + "/packages/exc/db/data"));
  EXPECT_TRUE(FileExists(base_ + "/packages/exc/db/replay.log"));

  uint64_t replay_fp = 0;
  auto report = ReplayPackage("exc", TestApp(&replay_fp));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->statements_replayed, 5);
  EXPECT_EQ(replay_fp, original_fp);
}

TEST_F(AuditReplayTest, ServerExcludedReplayDetectsDivergence) {
  Auditor auditor(db_.get(), Options(PackageMode::kServerExcluded, "div"));
  ASSERT_TRUE(auditor.Run(TestApp(nullptr)).ok());

  AppFn divergent = [](AppEnv& env) -> Status {
    os::ProcessContext& proc = env.root_process();
    LDV_ASSIGN_OR_RETURN(net::DbClient * db, env.OpenDbConnection(proc));
    return db->Query("SELECT id FROM items WHERE id = 1").status();
  };
  auto report = ReplayPackage("div", divergent);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kReplayMismatch);
}

TEST_F(AuditReplayTest, PtuPackagesFullDatabase) {
  uint64_t original_fp = 0;
  Auditor auditor(db_.get(), Options(PackageMode::kPtu, "ptu"));
  ASSERT_TRUE(auditor.Run(TestApp(&original_fp)).ok());

  auto manifest = PackageManifest::Load(base_ + "/packages/ptu");
  ASSERT_TRUE(manifest.ok());
  EXPECT_TRUE(manifest->has_full_data);
  EXPECT_TRUE(manifest->has_server_binary);
  EXPECT_TRUE(
      FileExists(base_ + "/packages/ptu/db/data_full/items.tbl"));

  uint64_t replay_fp = 0;
  auto report = ReplayPackage("ptu", TestApp(&replay_fp));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->restored_tuples, 10);  // the whole pre-state
  EXPECT_EQ(replay_fp, original_fp);
}

TEST_F(AuditReplayTest, PtuPackageIsLargerThanServerIncluded) {
  Auditor inc(db_.get(), Options(PackageMode::kServerIncluded, "size_inc"));
  ASSERT_TRUE(inc.Run(TestApp(nullptr)).ok());
  PopulateDb();  // fresh DB (previous app mutated it)
  Auditor ptu(db_.get(), Options(PackageMode::kPtu, "size_ptu"));
  ASSERT_TRUE(ptu.Run(TestApp(nullptr)).ok());

  auto inc_info = InspectPackage(base_ + "/packages/size_inc");
  auto ptu_info = InspectPackage(base_ + "/packages/size_ptu");
  ASSERT_TRUE(inc_info.ok());
  ASSERT_TRUE(ptu_info.ok());
  EXPECT_GT(ptu_info->full_data_bytes, inc_info->tuple_data_bytes);
  EXPECT_EQ(inc_info->full_data_bytes, 0);
  EXPECT_EQ(ptu_info->tuple_data_bytes, 0);
  EXPECT_EQ(inc_info->packaged_tuples, 5);
}

TEST_F(AuditReplayTest, VmImagePackageAndReplay) {
  uint64_t original_fp = 0;
  Auditor auditor(db_.get(), Options(PackageMode::kVmImage, "vmi"));
  ASSERT_TRUE(auditor.Run(TestApp(&original_fp)).ok());
  auto info = InspectPackage(base_ + "/packages/vmi");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->vm_image_bytes, 1 << 20);
  EXPECT_GT(info->full_data_bytes, 0);

  uint64_t replay_fp = 0;
  auto report = ReplayPackage("vmi", TestApp(&replay_fp));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(replay_fp, original_fp);
}

TEST_F(AuditReplayTest, PackagedTraceDeserializesAndLinksModels) {
  Auditor auditor(db_.get(), Options(PackageMode::kServerIncluded, "trace"));
  ASSERT_TRUE(auditor.Run(TestApp(nullptr)).ok());
  auto bytes = ReadFileToString(base_ + "/packages/trace/trace.ldv");
  ASSERT_TRUE(bytes.ok());
  auto graph = trace::DeserializeTrace(*bytes);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  // Combined trace: OS side (process, files) and DB side (statements,
  // tuples) connected by run edges.
  EXPECT_FALSE(graph->NodesOfType(trace::NodeType::kProcess).empty());
  EXPECT_FALSE(graph->NodesOfType(trace::NodeType::kFile).empty());
  EXPECT_FALSE(graph->NodesOfType(trace::NodeType::kQuery).empty());
  EXPECT_FALSE(graph->NodesOfType(trace::NodeType::kInsert).empty());
  EXPECT_FALSE(graph->NodesOfType(trace::NodeType::kUpdate).empty());
  EXPECT_FALSE(graph->NodesOfType(trace::NodeType::kTuple).empty());
  bool has_run_edge = false;
  for (const trace::TraceEdge& e : graph->edges()) {
    has_run_edge |= e.type == trace::EdgeType::kRun;
  }
  EXPECT_TRUE(has_run_edge);

  // The output file depends (Definition 11) on the input file and on the
  // packaged tuples, across model boundaries.
  trace::NodeId output =
      graph->FindNode(trace::NodeType::kFile, "/output/result.txt");
  trace::NodeId input =
      graph->FindNode(trace::NodeType::kFile, "/input/config.txt");
  ASSERT_NE(output, trace::kInvalidNode);
  ASSERT_NE(input, trace::kInvalidNode);
  trace::DependencyAnalyzer analyzer(graph.operator->());
  EXPECT_TRUE(analyzer.Depends(output, input));
}

TEST_F(AuditReplayTest, SocketBackedAuditMatchesInProcessAudit) {
  // The paper's deployment: the application talks to the DB server over a
  // socket; the instrumented client library sits in between. Auditing over
  // the real wire must produce the same package as the in-process path.
  net::EngineHandle engine(db_.get());
  net::DbServer server(&engine, base_ + "/ldv.sock");
  ASSERT_TRUE(server.Start().ok());

  uint64_t socket_fp = 0;
  AuditOptions options = Options(PackageMode::kServerIncluded, "sock");
  options.db_socket_path = server.socket_path();
  {
    Auditor auditor(db_.get(), options);
    auto report = auditor.Run(TestApp(&socket_fp));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->tuples_persisted, 5);
  }
  server.Stop();

  // Replay the socket-audited package (in-process, as Bob would).
  uint64_t replay_fp = 0;
  auto replay = ReplayPackage("sock", TestApp(&replay_fp));
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay_fp, socket_fp);
}

TEST_F(AuditReplayTest, AuditRefusesToOverwritePackage) {
  Auditor first(db_.get(), Options(PackageMode::kServerExcluded, "dup"));
  ASSERT_TRUE(first.Run(TestApp(nullptr)).ok());
  Auditor second(db_.get(), Options(PackageMode::kServerExcluded, "dup"));
  auto report = second.Run(TestApp(nullptr));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(AuditReplayTest, FailingAppSurfacesError) {
  AppFn bad = [](AppEnv& env) -> Status {
    os::ProcessContext& proc = env.root_process();
    LDV_ASSIGN_OR_RETURN(net::DbClient * db, env.OpenDbConnection(proc));
    return db->Query("SELECT * FROM no_such_table").status();
  };
  Auditor auditor(db_.get(), Options(PackageMode::kServerIncluded, "bad"));
  EXPECT_FALSE(auditor.Run(bad).ok());
}

// ---------------------------------------------------------------------------
// The §VII-D trade-off: a server-included package supports *modified*
// re-execution (Bob can change queries, as long as they touch the packaged
// subset), while a server-excluded package only supports faithful replay.
// ---------------------------------------------------------------------------

TEST_F(AuditReplayTest, ServerIncludedSupportsModifiedReExecution) {
  Auditor auditor(db_.get(), Options(PackageMode::kServerIncluded, "mod"));
  ASSERT_TRUE(auditor.Run(TestApp(nullptr)).ok());

  // Bob's variant: a different aggregate over the same packaged subset
  // (tuples with val in [50,80] plus the update's prior).
  AppFn bobs_variant = [](AppEnv& env) -> Status {
    os::ProcessContext& proc = env.root_process();
    LDV_ASSIGN_OR_RETURN(net::DbClient * db, env.OpenDbConnection(proc));
    LDV_ASSIGN_OR_RETURN(
        exec::ResultSet r,
        db->Query("SELECT count(*), sum(val) FROM items "
                  "WHERE val BETWEEN 50 AND 80"));
    if (r.rows[0][0].AsInt() != 4) {
      return Status::Internal("expected the 4 packaged tuples, got " +
                              r.rows[0][0].ToText());
    }
    return Status::Ok();
  };
  auto report = ReplayPackage("mod", bobs_variant);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
}

TEST_F(AuditReplayTest, ServerExcludedRejectsModifiedReExecution) {
  Auditor auditor(db_.get(), Options(PackageMode::kServerExcluded, "mod2"));
  ASSERT_TRUE(auditor.Run(TestApp(nullptr)).ok());

  AppFn bobs_variant = [](AppEnv& env) -> Status {
    os::ProcessContext& proc = env.root_process();
    LDV_ASSIGN_OR_RETURN(net::DbClient * db, env.OpenDbConnection(proc));
    return db->Query("SELECT count(*) FROM items").status();
  };
  auto report = ReplayPackage("mod2", bobs_variant);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kReplayMismatch);
}

TEST_F(AuditReplayTest, PartialReExecutionReplaysAPrefix) {
  // §VIII: partial re-execution is supported as long as requests follow the
  // recorded order — a prefix of the original application.
  Auditor auditor(db_.get(), Options(PackageMode::kServerExcluded, "part"));
  ASSERT_TRUE(auditor.Run(TestApp(nullptr)).ok());

  AppFn prefix = [](AppEnv& env) -> Status {
    os::ProcessContext& proc = env.root_process();
    LDV_ASSIGN_OR_RETURN(net::DbClient * db, env.OpenDbConnection(proc));
    LDV_RETURN_IF_ERROR(
        db->Query("INSERT INTO items VALUES (100, 1000, 'new')").status());
    LDV_ASSIGN_OR_RETURN(
        exec::ResultSet r,
        db->Query("SELECT id, val FROM items WHERE val BETWEEN 50 AND 80"));
    return r.rows.size() == 4 ? Status::Ok()
                              : Status::Internal("wrong replayed result");
  };
  auto report = ReplayPackage("part", prefix);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->statements_replayed, 2);
}

// ---------------------------------------------------------------------------
// Property: for randomized applications, both package types replay to the
// exact original results (package sufficiency, the paper's core guarantee).
// ---------------------------------------------------------------------------

class RandomizedReplayTest : public ::testing::TestWithParam<uint64_t> {};

AppFn RandomApp(uint64_t seed, uint64_t* fingerprint_out) {
  return [seed, fingerprint_out](AppEnv& env) -> Status {
    os::ProcessContext& proc = env.root_process();
    LDV_ASSIGN_OR_RETURN(net::DbClient * db, env.OpenDbConnection(proc));
    Rng rng(seed);
    uint64_t fp = 0;
    int steps = 8 + static_cast<int>(rng.Uniform(0, 8));
    for (int i = 0; i < steps; ++i) {
      int64_t choice = rng.Uniform(0, 3);
      if (choice == 0) {
        LDV_RETURN_IF_ERROR(
            db->Query(StrFormat("INSERT INTO items VALUES (%lld, %lld, 'r')",
                                static_cast<long long>(1000 + i),
                                static_cast<long long>(rng.Uniform(0, 500))))
                .status());
      } else if (choice == 1) {
        int64_t lo = rng.Uniform(0, 100);
        LDV_ASSIGN_OR_RETURN(
            exec::ResultSet r,
            db->Query(StrFormat(
                "SELECT id, val, tag FROM items WHERE val BETWEEN %lld AND "
                "%lld",
                static_cast<long long>(lo), static_cast<long long>(lo + 40))));
        fp ^= r.Fingerprint() + i;
      } else if (choice == 2) {
        LDV_RETURN_IF_ERROR(
            db->Query(StrFormat(
                          "UPDATE items SET val = val + 7 WHERE id = %lld",
                          static_cast<long long>(rng.Uniform(1, 10))))
                .status());
      } else {
        LDV_ASSIGN_OR_RETURN(
            exec::ResultSet r,
            db->Query("SELECT count(*), sum(val) FROM items"));
        fp ^= r.Fingerprint() * 3 + i;
      }
    }
    if (fingerprint_out != nullptr) *fingerprint_out = fp;
    return Status::Ok();
  };
}

TEST_P(RandomizedReplayTest, BothPackageTypesReplayFaithfully) {
  const uint64_t seed = GetParam();
  auto base = MakeTempDir("ldv_prop_");
  ASSERT_TRUE(base.ok());

  for (PackageMode mode :
       {PackageMode::kServerIncluded, PackageMode::kServerExcluded}) {
    Database db;
    auto items = db.CreateTable("items",
                                storage::Schema({{"id", ValueType::kInt64},
                                                 {"val", ValueType::kInt64},
                                                 {"tag", ValueType::kString}}));
    ASSERT_TRUE(items.ok());
    Rng data_rng(seed ^ 0xD474ULL);
    int64_t seq = db.NextStatementSeq();
    for (int i = 1; i <= 30; ++i) {
      ASSERT_TRUE((*items)
                      ->Insert({Value::Int(i),
                                Value::Int(data_rng.Uniform(0, 120)),
                                Value::Str("pre")},
                               seq)
                      .ok());
    }
    std::string name = std::string(PackageModeName(mode));
    AuditOptions options;
    options.mode = mode;
    options.package_dir = *base + "/pkg_" + name;
    options.sandbox_root = *base + "/sandbox_" + name;
    ASSERT_TRUE(MakeDirs(options.sandbox_root).ok());

    uint64_t original_fp = 1;
    Auditor auditor(&db, options);
    auto audit = auditor.Run(RandomApp(seed, &original_fp));
    ASSERT_TRUE(audit.ok()) << audit.status().ToString();

    ReplayOptions replay_options;
    replay_options.package_dir = options.package_dir;
    replay_options.scratch_dir = *base + "/scratch_" + name;
    auto replayer = Replayer::Open(replay_options);
    ASSERT_TRUE(replayer.ok()) << replayer.status().ToString();
    uint64_t replay_fp = 2;
    auto report = (*replayer)->Run(RandomApp(seed, &replay_fp));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(replay_fp, original_fp)
        << "mode=" << name << " seed=" << seed;
  }
  ASSERT_TRUE(RemoveAll(*base).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedReplayTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace ldv
