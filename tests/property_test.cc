#include <gtest/gtest.h>

#include <regex>

#include "net/protocol.h"
#include "sql/parser.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/serde.h"
#include "util/strings.h"

namespace ldv {
namespace {

// ---------------------------------------------------------------------------
// LIKE matcher vs a reference implementation built on std::regex.
// ---------------------------------------------------------------------------

bool ReferenceLike(const std::string& text, const std::string& pattern) {
  std::string re;
  for (char c : pattern) {
    switch (c) {
      case '%':
        re += ".*";
        break;
      case '_':
        re += ".";
        break;
      default:
        if (std::isalnum(static_cast<unsigned char>(c)) == 0) re += "\\";
        re += c;
    }
  }
  return std::regex_match(text, std::regex(re, std::regex::extended));
}

class LikePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LikePropertyTest, MatchesReferenceImplementation) {
  Rng rng(GetParam());
  const char alphabet[] = "ab0%_";
  for (int round = 0; round < 300; ++round) {
    std::string text;
    std::string pattern;
    int text_len = static_cast<int>(rng.Uniform(0, 8));
    int pattern_len = static_cast<int>(rng.Uniform(0, 6));
    for (int i = 0; i < text_len; ++i) {
      text.push_back("ab0"[rng.Uniform(0, 2)]);  // literal chars only
    }
    for (int i = 0; i < pattern_len; ++i) {
      pattern.push_back(alphabet[rng.Uniform(0, 4)]);
    }
    EXPECT_EQ(SqlLikeMatch(text, pattern), ReferenceLike(text, pattern))
        << "text='" << text << "' pattern='" << pattern << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LikePropertyTest,
                         ::testing::Range<uint64_t>(0, 8));

// ---------------------------------------------------------------------------
// Binary serde round-trips arbitrary value sequences; truncations fail
// cleanly rather than crash or loop.
// ---------------------------------------------------------------------------

class SerdePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerdePropertyTest, RoundTripAndTruncationSafety) {
  Rng rng(GetParam());
  BufferWriter w;
  std::vector<int64_t> varints;
  std::vector<std::string> strings;
  for (int i = 0; i < 50; ++i) {
    int64_t v = static_cast<int64_t>(rng.Next());
    varints.push_back(v);
    w.PutVarint(v);
    std::string s;
    int len = static_cast<int>(rng.Uniform(0, 20));
    for (int k = 0; k < len; ++k) {
      s.push_back(static_cast<char>(rng.Uniform(0, 255)));
    }
    strings.push_back(s);
    w.PutString(s);
  }
  BufferReader r(w.data());
  for (int i = 0; i < 50; ++i) {
    auto v = r.GetVarint();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, varints[static_cast<size_t>(i)]);
    auto s = r.GetString();
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(*s, strings[static_cast<size_t>(i)]);
  }
  EXPECT_TRUE(r.AtEnd());

  // Every strict prefix either decodes fewer items or fails — never crashes.
  for (size_t cut : {w.data().size() / 4, w.data().size() / 2,
                     w.data().size() - 1}) {
    BufferReader truncated(std::string_view(w.data()).substr(0, cut));
    int decoded = 0;
    while (true) {
      auto v = truncated.GetVarint();
      if (!v.ok()) break;
      auto s = truncated.GetString();
      if (!s.ok()) break;
      ++decoded;
    }
    EXPECT_LE(decoded, 50);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdePropertyTest,
                         ::testing::Range<uint64_t>(100, 108));

// ---------------------------------------------------------------------------
// CSV round-trips arbitrary field content (quotes, commas, newlines).
// ---------------------------------------------------------------------------

class CsvPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvPropertyTest, RoundTripsArbitraryFields) {
  Rng rng(GetParam());
  const char alphabet[] = "ab,\"\n'x0 ";
  std::vector<std::vector<std::string>> rows;
  CsvWriter writer;
  int num_rows = static_cast<int>(rng.Uniform(1, 20));
  int num_cols = static_cast<int>(rng.Uniform(1, 6));
  for (int r = 0; r < num_rows; ++r) {
    std::vector<std::string> row;
    for (int c = 0; c < num_cols; ++c) {
      std::string field;
      int len = static_cast<int>(rng.Uniform(0, 12));
      for (int i = 0; i < len; ++i) {
        field.push_back(alphabet[rng.Uniform(0, 8)]);
      }
      row.push_back(std::move(field));
    }
    writer.AppendRow(row);
    rows.push_back(std::move(row));
  }
  auto parsed = ParseCsv(writer.data());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // A trailing empty-single-field row is ambiguous in CSV; our writer never
  // produces one from non-empty input, so exact equality must hold.
  EXPECT_EQ(*parsed, rows);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvPropertyTest,
                         ::testing::Range<uint64_t>(200, 212));

// ---------------------------------------------------------------------------
// Protocol decoding never crashes on corrupted bytes.
// ---------------------------------------------------------------------------

class ProtocolFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProtocolFuzzTest, CorruptedResponsesFailCleanly) {
  // Start from a valid encoded response and flip/truncate bytes.
  exec::ResultSet result;
  result.schema = storage::Schema({{"a", storage::ValueType::kInt64},
                                   {"b", storage::ValueType::kString}});
  result.rows.push_back({storage::Value::Int(1), storage::Value::Str("x")});
  result.lineage.push_back({{1, 1, 1}});
  result.has_provenance = true;
  std::string bytes = net::EncodeResponse(Status::Ok(), result);

  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    std::string corrupted = bytes;
    int mutations = static_cast<int>(rng.Uniform(1, 4));
    for (int m = 0; m < mutations; ++m) {
      size_t pos = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(corrupted.size()) - 1));
      corrupted[pos] = static_cast<char>(rng.Next());
    }
    if (rng.Bernoulli(0.3)) {
      corrupted.resize(static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(corrupted.size()))));
    }
    // Must return (ok or error) without crashing; nothing else asserted.
    auto decoded = net::DecodeResponse(corrupted);
    (void)decoded;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzzTest,
                         ::testing::Range<uint64_t>(300, 306));

// ---------------------------------------------------------------------------
// Parser round-trip: render(parse(sql)) reparses to a fixpoint.
// ---------------------------------------------------------------------------

class ParserRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

/// Generates a random (valid) SELECT over a fictional schema.
std::string RandomSelect(Rng* rng) {
  const char* cols[] = {"a", "b", "c"};
  std::string sql = "SELECT ";
  int items = static_cast<int>(rng->Uniform(1, 3));
  for (int i = 0; i < items; ++i) {
    if (i > 0) sql += ", ";
    switch (rng->Uniform(0, 2)) {
      case 0:
        sql += cols[rng->Uniform(0, 2)];
        break;
      case 1:
        sql += StrFormat("%s + %lld", cols[rng->Uniform(0, 2)],
                         static_cast<long long>(rng->Uniform(0, 9)));
        break;
      default:
        sql += StrFormat("count(*)");
        break;
    }
  }
  sql += " FROM t";
  if (rng->Bernoulli(0.7)) {
    sql += StrFormat(" WHERE %s %s %lld", cols[rng->Uniform(0, 2)],
                     rng->Bernoulli(0.5) ? ">" : "=",
                     static_cast<long long>(rng->Uniform(0, 99)));
    if (rng->Bernoulli(0.4)) {
      sql += StrFormat(" AND %s BETWEEN 1 AND %lld", cols[rng->Uniform(0, 2)],
                       static_cast<long long>(rng->Uniform(2, 50)));
    }
  }
  if (rng->Bernoulli(0.3)) sql += " GROUP BY a";
  if (rng->Bernoulli(0.4)) sql += " ORDER BY 1";
  if (rng->Bernoulli(0.3)) {
    sql += StrFormat(" LIMIT %lld", static_cast<long long>(rng->Uniform(0, 20)));
  }
  return sql;
}

TEST_P(ParserRoundTripTest, RenderedSelectsReachAFixpoint) {
  Rng rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    std::string sql = RandomSelect(&rng);
    auto stmt = sql::Parse(sql);
    ASSERT_TRUE(stmt.ok()) << sql;
    // GROUP BY clauses with non-aggregated selects may be invalid to
    // *execute* but must still round-trip through the renderer.
    std::string rendered = sql::SelectToString(*stmt->select);
    auto second = sql::Parse(rendered);
    ASSERT_TRUE(second.ok()) << "rendered: " << rendered;
    EXPECT_EQ(sql::SelectToString(*second->select), rendered) << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTripTest,
                         ::testing::Range<uint64_t>(400, 410));

}  // namespace
}  // namespace ldv
