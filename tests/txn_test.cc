// Transaction semantics at the engine boundary: BEGIN/COMMIT/ROLLBACK
// interception, rollback via the version archive, session ownership, and
// the autocommit-vs-explicit split over the socket protocol.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "net/db_client.h"
#include "net/db_server.h"
#include "storage/table.h"
#include "util/fsutil.h"

namespace ldv::net {
namespace {

class TxnTest : public ::testing::Test {
 protected:
  TxnTest() : engine_(&db_) {}

  exec::ResultSet Run(const std::string& sql, int64_t session = 0) {
    DbRequest request;
    request.sql = sql;
    auto result = engine_.ExecuteSession(request, session);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    return result.ok() ? std::move(*result) : exec::ResultSet{};
  }

  Status RunStatus(const std::string& sql, int64_t session = 0) {
    DbRequest request;
    request.sql = sql;
    return engine_.ExecuteSession(request, session).status();
  }

  std::string Scan(const std::string& table) {
    exec::ResultSet rows =
        Run("SELECT id, v FROM " + table + " ORDER BY id, v");
    std::string out;
    for (const auto& row : rows.rows) {
      out += std::to_string(row[0].AsInt()) + "=" +
             std::to_string(row[1].AsInt()) + ";";
    }
    return out;
  }

  storage::Database db_;
  EngineHandle engine_;
};

TEST_F(TxnTest, CommitKeepsEffects) {
  Run("CREATE TABLE t (id INT, v INT)");
  Run("BEGIN");
  Run("INSERT INTO t VALUES (1, 10)");
  Run("INSERT INTO t VALUES (2, 20)");
  Run("COMMIT");
  EXPECT_EQ(Scan("t"), "1=10;2=20;");
}

TEST_F(TxnTest, RollbackRestoresInsertsUpdatesAndDeletes) {
  Run("CREATE TABLE t (id INT, v INT)");
  Run("INSERT INTO t VALUES (1, 10)");
  Run("INSERT INTO t VALUES (2, 20)");

  Run("BEGIN");
  Run("INSERT INTO t VALUES (3, 30)");
  Run("UPDATE t SET v = 99 WHERE id = 1");
  Run("DELETE FROM t WHERE id = 2");
  EXPECT_EQ(Scan("t"), "1=99;3=30;");
  Run("ROLLBACK");
  EXPECT_EQ(Scan("t"), "1=10;2=20;");
}

TEST_F(TxnTest, RollbackRestoresVersionArchiveState) {
  Run("CREATE TABLE t (id INT, v INT)");
  Run("INSERT INTO t VALUES (1, 10)");
  storage::Table* table = db_.FindTable("t");
  ASSERT_NE(table, nullptr);
  const size_t archive_before = table->archive().size();
  const storage::RowId max_rowid_before = table->max_rowid();

  Run("BEGIN");
  Run("UPDATE t SET v = 50 WHERE id = 1");
  Run("UPDATE t SET v = 60 WHERE id = 1");
  Run("INSERT INTO t VALUES (2, 20)");
  // The transaction archived pre-images so it can undo.
  EXPECT_GT(table->archive().size(), archive_before);
  Run("ROLLBACK");

  // Archive, rowid allocation and row content are all back to the mark:
  // a later redo of the log (which never saw this transaction) allocates
  // the same rowids the live engine now will.
  EXPECT_EQ(table->archive().size(), archive_before);
  EXPECT_EQ(table->max_rowid(), max_rowid_before);
  EXPECT_EQ(Scan("t"), "1=10;");
}

TEST_F(TxnTest, RowidAllocationUnaffectedByRolledBackTxn) {
  Run("CREATE TABLE t (id INT, v INT)");
  Run("BEGIN");
  Run("INSERT INTO t VALUES (7, 70)");
  Run("ROLLBACK");
  Run("INSERT INTO t VALUES (8, 80)");
  storage::Table* table = db_.FindTable("t");
  ASSERT_NE(table, nullptr);
  // The rolled-back insert's rowid was returned to the allocator: the
  // committed insert reuses rowid 1.
  EXPECT_NE(table->Find(1), nullptr);
  EXPECT_EQ(table->max_rowid(), 1);
}

TEST_F(TxnTest, NestedBeginRejectedCleanly) {
  Run("CREATE TABLE t (id INT, v INT)");
  Run("BEGIN");
  Run("INSERT INTO t VALUES (1, 10)");
  Status nested = RunStatus("BEGIN");
  EXPECT_EQ(nested.code(), StatusCode::kInvalidArgument);
  // The original transaction is still open and still commits.
  Run("COMMIT");
  EXPECT_EQ(Scan("t"), "1=10;");
}

TEST_F(TxnTest, CommitAndRollbackWithoutBeginAreErrors) {
  EXPECT_EQ(RunStatus("COMMIT").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(RunStatus("ROLLBACK").code(), StatusCode::kInvalidArgument);
}

TEST_F(TxnTest, FailedStatementAbortsTransaction) {
  Run("CREATE TABLE t (id INT, v INT)");
  Run("INSERT INTO t VALUES (1, 10)");
  Run("BEGIN");
  Run("UPDATE t SET v = 99 WHERE id = 1");
  Status bad = RunStatus("INSERT INTO nosuch VALUES (1)");
  EXPECT_FALSE(bad.ok());
  // The whole transaction rolled back; COMMIT now has nothing to commit.
  EXPECT_EQ(RunStatus("COMMIT").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Scan("t"), "1=10;");
}

TEST_F(TxnTest, DdlAndCopyRejectedInsideTransaction) {
  Run("CREATE TABLE t (id INT, v INT)");
  Run("BEGIN");
  EXPECT_EQ(RunStatus("CREATE TABLE u (id INT)").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunStatus("DROP TABLE t").code(), StatusCode::kInvalidArgument);
  Run("ROLLBACK");
  // Outside the transaction DDL works again.
  Run("CREATE TABLE u (id INT)");
}

TEST_F(TxnTest, OtherSessionWaitsForOpenTransaction) {
  Run("CREATE TABLE t (id INT, v INT)");
  Run("BEGIN", /*session=*/1);
  Run("INSERT INTO t VALUES (1, 10)", /*session=*/1);

  // Session 2's statement parks until session 1 commits.
  std::thread committer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Run("COMMIT", /*session=*/1);
  });
  Run("INSERT INTO t VALUES (2, 20)", /*session=*/2);
  committer.join();
  EXPECT_EQ(Scan("t"), "1=10;2=20;");
}

TEST_F(TxnTest, TransactionWaitTimesOut) {
  engine_.set_txn_wait_millis(50);
  Run("CREATE TABLE t (id INT, v INT)");
  Run("BEGIN", /*session=*/1);
  Status blocked = RunStatus("INSERT INTO t VALUES (1, 1)", /*session=*/2);
  EXPECT_EQ(blocked.code(), StatusCode::kIOError);
  Run("ROLLBACK", /*session=*/1);
}

TEST_F(TxnTest, AbortSessionRollsBackOpenTransaction) {
  Run("CREATE TABLE t (id INT, v INT)");
  Run("BEGIN", /*session=*/5);
  Run("INSERT INTO t VALUES (1, 10)", /*session=*/5);
  engine_.AbortSession(5);
  // The engine is free again and the insert is gone.
  EXPECT_EQ(Scan("t"), "");
  Run("BEGIN", /*session=*/6);
  Run("ROLLBACK", /*session=*/6);
}

TEST_F(TxnTest, AbortSessionWithoutTransactionIsNoOp) {
  Run("CREATE TABLE t (id INT, v INT)");
  engine_.AbortSession(9);
  Run("INSERT INTO t VALUES (1, 10)");
  EXPECT_EQ(Scan("t"), "1=10;");
}

// Over the socket: a dropped connection rolls its open transaction back,
// and autocommit statements from another connection commit independently.
TEST(TxnSocketTest, DisconnectMidTransactionRollsBack) {
  storage::Database db;
  EngineHandle engine(&db);
  {
    DbRequest ddl;
    ddl.sql = "CREATE TABLE t (id INT, v INT)";
    ASSERT_TRUE(engine.Execute(ddl).ok());
  }
  auto socket_dir = MakeTempDir("txn_socket");
  ASSERT_TRUE(socket_dir.ok());
  const std::string path = *socket_dir + "/db.sock";
  DbServer server(&engine, path, DbServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  {
    auto txn_client = SocketDbClient::Connect(path);
    ASSERT_TRUE(txn_client.ok());
    ASSERT_TRUE((*txn_client)->Query("BEGIN").ok());
    ASSERT_TRUE((*txn_client)->Query("INSERT INTO t VALUES (1, 10)").ok());
    // Drop the connection without COMMIT.
    (*txn_client)->Close();
  }

  // A second connection autocommits — once the server has reaped the dead
  // transaction its statement proceeds and sees no trace of the insert.
  auto client = SocketDbClient::Connect(path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Query("INSERT INTO t VALUES (2, 20)").ok());
  auto rows = (*client)->Query("SELECT id, v FROM t ORDER BY id");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 2);

  // Explicit transaction over the wire commits both statements atomically.
  ASSERT_TRUE((*client)->Query("BEGIN").ok());
  ASSERT_TRUE((*client)->Query("INSERT INTO t VALUES (3, 30)").ok());
  ASSERT_TRUE((*client)->Query("INSERT INTO t VALUES (4, 40)").ok());
  ASSERT_TRUE((*client)->Query("COMMIT").ok());
  rows = (*client)->Query("SELECT id FROM t ORDER BY id");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 3u);

  server.Stop();
  (void)RemoveAll(*socket_dir);
}

}  // namespace
}  // namespace ldv::net
