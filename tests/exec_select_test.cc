#include <gtest/gtest.h>

#include "exec/executor.h"
#include "storage/database.h"

namespace ldv::exec {
namespace {

using storage::Database;
using storage::Schema;
using storage::Value;
using storage::ValueType;

class ExecSelectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    exec_ = std::make_unique<Executor>(&db_);
    Run("CREATE TABLE sales (id INT, price DOUBLE, region TEXT)");
    Run("INSERT INTO sales VALUES (1, 5, 'east'), (2, 11, 'west'), "
        "(3, 14, 'east'), (4, 2, 'north')");
    Run("CREATE TABLE regions (name TEXT, manager TEXT)");
    Run("INSERT INTO regions VALUES ('east', 'alice'), ('west', 'bob'), "
        "('south', 'carol')");
  }

  ResultSet Run(const std::string& sql) {
    auto result = exec_->Execute(sql, {});
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? std::move(result).value() : ResultSet{};
  }

  Status RunError(const std::string& sql) {
    auto result = exec_->Execute(sql, {});
    EXPECT_FALSE(result.ok()) << sql << " unexpectedly succeeded";
    return result.ok() ? Status::Ok() : result.status();
  }

  Database db_;
  std::unique_ptr<Executor> exec_;
};

TEST_F(ExecSelectTest, SimpleProjectionAndFilter) {
  ResultSet r = Run("SELECT id, price FROM sales WHERE price > 10");
  EXPECT_EQ(r.schema.ToString(), "id INT, price DOUBLE");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.rows[1][0].AsInt(), 3);
}

TEST_F(ExecSelectTest, StarExpansion) {
  ResultSet r = Run("SELECT * FROM sales WHERE id = 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].size(), 3u);
  EXPECT_EQ(r.rows[0][2].AsString(), "east");
}

TEST_F(ExecSelectTest, SelectWithoutFrom) {
  ResultSet r = Run("SELECT 1 + 2 AS three, 'x' AS label");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_EQ(r.schema.column(0).name, "three");
}

TEST_F(ExecSelectTest, ArithmeticAndFunctions) {
  ResultSet r = Run(
      "SELECT id * 2, price / 2, UPPER(region), LENGTH(region), ABS(0 - id) "
      "FROM sales WHERE id = 3");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 6);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 7.0);
  EXPECT_EQ(r.rows[0][2].AsString(), "EAST");
  EXPECT_EQ(r.rows[0][3].AsInt(), 4);
  EXPECT_EQ(r.rows[0][4].AsInt(), 3);
}

TEST_F(ExecSelectTest, BetweenLikeIn) {
  EXPECT_EQ(Run("SELECT id FROM sales WHERE price BETWEEN 5 AND 11").rows.size(),
            2u);
  EXPECT_EQ(
      Run("SELECT id FROM sales WHERE price NOT BETWEEN 5 AND 11").rows.size(),
      2u);
  EXPECT_EQ(Run("SELECT id FROM sales WHERE region LIKE '%s%'").rows.size(),
            3u);
  EXPECT_EQ(Run("SELECT id FROM sales WHERE region NOT LIKE '%east%'")
                .rows.size(),
            2u);
  EXPECT_EQ(Run("SELECT id FROM sales WHERE id IN (1, 3, 99)").rows.size(),
            2u);
  EXPECT_EQ(Run("SELECT id FROM sales WHERE id NOT IN (1, 3)").rows.size(),
            2u);
}

TEST_F(ExecSelectTest, HashJoinOnEquiPredicate) {
  ResultSet r = Run(
      "SELECT s.id, r.manager FROM sales s, regions r "
      "WHERE s.region = r.name ORDER BY s.id");
  // north has no region row; south has no sales.
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].AsString(), "alice");
  EXPECT_EQ(r.rows[1][1].AsString(), "bob");
  EXPECT_EQ(r.rows[2][1].AsString(), "alice");
}

TEST_F(ExecSelectTest, ExplicitJoinSyntax) {
  ResultSet r = Run(
      "SELECT s.id FROM sales s JOIN regions r ON s.region = r.name "
      "WHERE r.manager = 'alice'");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(ExecSelectTest, CrossJoinWithResidual) {
  // No equi predicate: nested loop with a non-equi residual.
  ResultSet r = Run(
      "SELECT s.id, r.name FROM sales s, regions r WHERE s.price > 10 AND "
      "r.manager <> 'carol'");
  EXPECT_EQ(r.rows.size(), 4u);  // 2 sales rows x 2 regions
}

TEST_F(ExecSelectTest, GlobalAggregates) {
  ResultSet r = Run(
      "SELECT count(*), sum(price), avg(price), min(price), max(price) "
      "FROM sales");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 32.0);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), 8.0);
  EXPECT_DOUBLE_EQ(r.rows[0][3].AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(r.rows[0][4].AsDouble(), 14.0);
}

TEST_F(ExecSelectTest, AggregateWithFilterMatchesPaperExample) {
  // Example 4 from the paper: SELECT sum(price) FROM sales WHERE price > 10.
  ResultSet r = Run("SELECT sum(price) AS ttl FROM sales WHERE price > 10");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 25.0);
  EXPECT_EQ(r.schema.column(0).name, "ttl");
}

TEST_F(ExecSelectTest, GroupByWithHaving) {
  ResultSet r = Run(
      "SELECT region, count(*) AS n, sum(price) FROM sales GROUP BY region "
      "HAVING count(*) > 1 ORDER BY region");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "east");
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), 19.0);
}

TEST_F(ExecSelectTest, GroupByOnEmptyInputAndGlobalOnEmpty) {
  Run("CREATE TABLE empty_t (x INT)");
  EXPECT_EQ(Run("SELECT x, count(*) FROM empty_t GROUP BY x").rows.size(), 0u);
  ResultSet global = Run("SELECT count(*) FROM empty_t");
  ASSERT_EQ(global.rows.size(), 1u);
  EXPECT_EQ(global.rows[0][0].AsInt(), 0);
  ResultSet sum = Run("SELECT sum(x) FROM empty_t");
  EXPECT_TRUE(sum.rows[0][0].is_null());
}

TEST_F(ExecSelectTest, DistinctMergesDuplicates) {
  ResultSet r = Run("SELECT DISTINCT region FROM sales ORDER BY region");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsString(), "east");
}

TEST_F(ExecSelectTest, OrderByDirectionsAndOrdinals) {
  ResultSet r = Run("SELECT id, price FROM sales ORDER BY price DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_EQ(r.rows[1][0].AsInt(), 2);
  ResultSet o = Run("SELECT id, price FROM sales ORDER BY 2");
  EXPECT_EQ(o.rows[0][0].AsInt(), 4);
}

TEST_F(ExecSelectTest, LimitWithoutOrder) {
  EXPECT_EQ(Run("SELECT id FROM sales LIMIT 3").rows.size(), 3u);
  EXPECT_EQ(Run("SELECT id FROM sales LIMIT 0").rows.size(), 0u);
}

TEST_F(ExecSelectTest, NullSemantics) {
  Run("CREATE TABLE n (a INT, b TEXT)");
  Run("INSERT INTO n VALUES (1, 'x'), (NULL, 'y')");
  EXPECT_EQ(Run("SELECT a FROM n WHERE a = 1").rows.size(), 1u);
  // NULL never matches comparisons.
  EXPECT_EQ(Run("SELECT a FROM n WHERE a <> 1").rows.size(), 0u);
  EXPECT_EQ(Run("SELECT a FROM n WHERE a IS NULL").rows.size(), 1u);
  EXPECT_EQ(Run("SELECT a FROM n WHERE a IS NOT NULL").rows.size(), 1u);
  ResultSet r = Run("SELECT a + 1 FROM n WHERE a IS NULL");
  EXPECT_TRUE(r.rows[0][0].is_null());
  EXPECT_EQ(Run("SELECT COALESCE(a, 42) FROM n WHERE a IS NULL")
                .rows[0][0]
                .AsInt(),
            42);
}

TEST_F(ExecSelectTest, ProvPseudoColumns) {
  ResultSet r = Run(
      "SELECT prov_rowid, prov_v, id FROM sales WHERE prov_rowid = 2");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.rows[0][2].AsInt(), 2);
  // '*' must not leak the pseudo-columns.
  ResultSet star = Run("SELECT * FROM sales WHERE prov_rowid = 2");
  EXPECT_EQ(star.rows[0].size(), 3u);
}

TEST_F(ExecSelectTest, ErrorsSurfaceAsStatuses) {
  EXPECT_EQ(RunError("SELECT missing FROM sales").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(RunError("SELECT id FROM nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(RunError("SELECT region + 1 FROM sales").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunError("SELECT id, count(*) FROM sales").code(),
            StatusCode::kInvalidArgument);  // ungrouped column
  EXPECT_EQ(RunError("SELECT id FROM sales HAVING id > 1").code(),
            StatusCode::kInvalidArgument);
  // Ambiguous unqualified column across two tables.
  Run("CREATE TABLE sales2 (id INT)");
  EXPECT_EQ(RunError("SELECT id FROM sales, sales2").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExecSelectTest, FingerprintDetectsDifferences) {
  ResultSet a = Run("SELECT id FROM sales WHERE id <= 2");
  ResultSet b = Run("SELECT id FROM sales WHERE id <= 2");
  ResultSet c = Run("SELECT id FROM sales WHERE id <= 3");
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
}

TEST_F(ExecSelectTest, ThreeWayJoin) {
  Run("CREATE TABLE managers (name TEXT, level INT)");
  Run("INSERT INTO managers VALUES ('alice', 3), ('bob', 2)");
  ResultSet r = Run(
      "SELECT s.id, m.level FROM sales s, regions r, managers m "
      "WHERE s.region = r.name AND r.manager = m.name ORDER BY s.id");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 3);
}

}  // namespace
}  // namespace ldv::exec
