#include <gtest/gtest.h>

#include <set>

#include "util/csv.h"
#include "util/fsutil.h"
#include "util/rng.h"
#include "util/serde.h"
#include "util/strings.h"

namespace ldv {
namespace {

TEST(StringsTest, CaseConversions) {
  EXPECT_EQ(ToLower("AbC_1"), "abc_1");
  EXPECT_EQ(ToUpper("AbC_1"), "ABC_1");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StringsTest, SplitJoinTrim) {
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(Trim("  x y\t\n"), "x y");
  EXPECT_TRUE(StartsWith("prov_rowid", "prov_"));
  EXPECT_TRUE(EndsWith("orders.csv", ".csv"));
}

TEST(StringsTest, ParseNumbers) {
  EXPECT_EQ(*ParseInt64("  -42 "), -42);
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5e2"), 250.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StringsTest, SqlLikeSemantics) {
  EXPECT_TRUE(SqlLikeMatch("Customer#000001234", "%0000%"));
  EXPECT_FALSE(SqlLikeMatch("Customer#123456789", "%0000%"));
  EXPECT_TRUE(SqlLikeMatch("hello", "h_llo"));
  EXPECT_FALSE(SqlLikeMatch("hello", "h_lo"));
  EXPECT_TRUE(SqlLikeMatch("abc", "%"));
  EXPECT_TRUE(SqlLikeMatch("", "%"));
  EXPECT_FALSE(SqlLikeMatch("", "_"));
  EXPECT_TRUE(SqlLikeMatch("abc", "abc"));
  EXPECT_TRUE(SqlLikeMatch("aXbXc", "a%b%c"));
  EXPECT_FALSE(SqlLikeMatch("ab", "a%b%c"));
  EXPECT_TRUE(SqlLikeMatch("needle in haystack", "%needle%"));
}

TEST(StringsTest, ZeroPad) {
  EXPECT_EQ(ZeroPad(7, 9), "000000007");
  EXPECT_EQ(ZeroPad(123456789, 9), "123456789");
  EXPECT_EQ(ZeroPad(1234567890, 9), "1234567890");
}

TEST(StringsTest, Fnv1aIsStable) {
  EXPECT_EQ(Fnv1a("abc"), Fnv1a("abc"));
  EXPECT_NE(Fnv1a("abc"), Fnv1a("abd"));
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = c.Uniform(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
  for (int i = 0; i < 100; ++i) {
    double d = c.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(CsvTest, WriteParseRoundTrip) {
  CsvWriter w;
  w.AppendRow({"1", "plain", "with,comma", "with\"quote", "multi\nline", ""});
  w.AppendRow({"2", "b", "", "", "", "x"});
  auto rows = ParseCsv(w.data());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][2], "with,comma");
  EXPECT_EQ((*rows)[0][3], "with\"quote");
  EXPECT_EQ((*rows)[0][4], "multi\nline");
  EXPECT_EQ((*rows)[0][5], "");
  EXPECT_EQ((*rows)[1][0], "2");
  EXPECT_EQ(w.row_count(), 2);
}

TEST(CsvTest, ParseHandlesCrlfAndErrors) {
  auto rows = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1][1], "d");
  EXPECT_FALSE(ParseCsv("\"unterminated").ok());
  EXPECT_FALSE(ParseCsv("ab\"cd").ok());
}

TEST(SerdeTest, RoundTripAllTypes) {
  BufferWriter w;
  w.PutU8(7);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutVarint(-1234567890123LL);
  w.PutVarint(0);
  w.PutVarint(127);
  w.PutDouble(3.14159);
  w.PutString("hello world");
  w.PutBool(true);

  BufferReader r(w.data());
  EXPECT_EQ(*r.GetU8(), 7);
  EXPECT_EQ(*r.GetU32(), 0xDEADBEEF);
  EXPECT_EQ(*r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*r.GetVarint(), -1234567890123LL);
  EXPECT_EQ(*r.GetVarint(), 0);
  EXPECT_EQ(*r.GetVarint(), 127);
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 3.14159);
  EXPECT_EQ(*r.GetString(), "hello world");
  EXPECT_TRUE(*r.GetBool());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, TruncationIsAnError) {
  BufferWriter w;
  w.PutString("abcdef");
  std::string data = w.TakeData();
  const std::string truncated = data.substr(0, 3);
  BufferReader r(truncated);
  EXPECT_FALSE(r.GetString().ok());
  BufferReader r2("");
  EXPECT_FALSE(r2.GetU64().ok());
  EXPECT_FALSE(r2.GetVarint().ok());
}

TEST(FsUtilTest, FileRoundTripAndTreeOps) {
  auto dir = MakeTempDir("ldv_fsutil_");
  ASSERT_TRUE(dir.ok());
  std::string base = *dir;
  ASSERT_TRUE(WriteStringToFile(JoinPath(base, "a/b/c.txt"), "hello").ok());
  ASSERT_TRUE(AppendStringToFile(JoinPath(base, "a/b/c.txt"), " world").ok());
  auto text = ReadFileToString(JoinPath(base, "a/b/c.txt"));
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "hello world");
  EXPECT_TRUE(FileExists(JoinPath(base, "a/b/c.txt")));
  EXPECT_FALSE(FileExists(JoinPath(base, "a/b/missing.txt")));
  EXPECT_EQ(*FileSize(JoinPath(base, "a/b/c.txt")), 11);

  ASSERT_TRUE(CopyTree(JoinPath(base, "a"), JoinPath(base, "a2")).ok());
  EXPECT_TRUE(FileExists(JoinPath(base, "a2/b/c.txt")));
  EXPECT_EQ(TreeSize(JoinPath(base, "a2")), 11);

  auto listing = ListTree(base);
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 2u);

  ASSERT_TRUE(RemoveAll(base).ok());
  EXPECT_FALSE(DirExists(base));
}

}  // namespace
}  // namespace ldv
