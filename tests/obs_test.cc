#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/span.h"
#include "util/fsutil.h"

namespace ldv::obs {
namespace {

constexpr int kThreads = 8;

TEST(CounterTest, ExactTotalUnderContention) {
  Counter counter;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 20'000; ++i) counter.Add(1);
      for (int i = 0; i < 10'000; ++i) counter.Add(5);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * (20'000 + 5 * 10'000));
}

TEST(HistogramTest, ExactTotalsUnderContention) {
  Histogram histogram({10, 100, 1000});
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int64_t v = 1; v <= 1000; ++v) histogram.Observe(v);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(histogram.TotalCount(), kThreads * 1000);
  EXPECT_EQ(histogram.Sum(), kThreads * (1000 * 1001 / 2));
  std::vector<int64_t> counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], kThreads * 10);   // 1..10
  EXPECT_EQ(counts[1], kThreads * 90);   // 11..100
  EXPECT_EQ(counts[2], kThreads * 900);  // 101..1000
  EXPECT_EQ(counts[3], 0);
}

TEST(HistogramTest, OverflowBucketCountsBeyondLastBound) {
  Histogram histogram({10});
  histogram.Observe(10);
  histogram.Observe(11);
  histogram.Observe(1 << 30);
  std::vector<int64_t> counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 2);
}

TEST(MetricsRegistryTest, GetOrCreateReturnsSameInstance) {
  MetricsRegistry registry;
  Counter* a = registry.counter("requests");
  Counter* b = registry.counter("requests");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.counter("other"));
  Histogram* h = registry.histogram("lat", {1, 2, 3});
  // Second lookup ignores the (different) bounds and returns the original.
  EXPECT_EQ(registry.histogram("lat", {99}), h);
  EXPECT_EQ(h->bounds().size(), 3u);
}

TEST(MetricsRegistryTest, SnapshotWhileWritingStaysMonotone) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("writes");
  Histogram* histogram = registry.histogram("lat", {100});
  std::vector<std::thread> writers;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 200'000;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerWriter; ++i) {
        counter->Add(1);
        histogram->Observe(i % 200);
      }
    });
  }
  // Snapshots taken mid-flight must never go backwards or tear into
  // impossible values (each read is atomic; totals are monotone).
  int64_t last_counter = 0;
  int64_t last_hist = 0;
  for (int i = 0; i < 50; ++i) {
    MetricsSnapshot snapshot = registry.Snapshot();
    int64_t c = snapshot.counters.at("writes");
    int64_t h = snapshot.histograms.at("lat").total_count;
    EXPECT_GE(c, last_counter);
    EXPECT_GE(h, last_hist);
    EXPECT_LE(c, int64_t{kWriters} * kPerWriter);
    EXPECT_LE(h, int64_t{kWriters} * kPerWriter);
    last_counter = c;
    last_hist = h;
  }
  for (std::thread& t : writers) t.join();
  MetricsSnapshot final_snapshot = registry.Snapshot();
  EXPECT_EQ(final_snapshot.counters.at("writes"),
            int64_t{kWriters} * kPerWriter);
  EXPECT_EQ(final_snapshot.histograms.at("lat").total_count,
            int64_t{kWriters} * kPerWriter);
}

TEST(MetricsRegistryTest, SnapshotToJsonShape) {
  MetricsRegistry registry;
  registry.counter("hits")->Add(3);
  registry.gauge("depth")->Set(-7);
  registry.histogram("lat", {5, 50})->Observe(6);
  Json json = registry.Snapshot().ToJson();
  std::string dump = json.Dump();
  EXPECT_NE(dump.find("\"counters\""), std::string::npos);
  EXPECT_NE(dump.find("\"hits\":3"), std::string::npos);
  EXPECT_NE(dump.find("\"depth\":-7"), std::string::npos);
  EXPECT_NE(dump.find("\"+Inf\""), std::string::npos) << dump;
  // Round-trips through the JSON parser.
  auto parsed = Json::Parse(dump);
  ASSERT_TRUE(parsed.ok());
}

TEST(MetricsRegistryTest, DeltaReportShowsOnlyChangedMetrics) {
  MetricsRegistry registry;
  Counter* moved = registry.counter("moved");
  registry.counter("idle");
  moved->Add(2);
  MetricsSnapshot before = registry.Snapshot();
  moved->Add(5);
  registry.histogram("lat", {10})->Observe(4);
  std::string report = registry.Snapshot().DeltaReport(before);
  EXPECT_NE(report.find("moved: +5 (total 7)"), std::string::npos) << report;
  EXPECT_NE(report.find("lat: +1 obs"), std::string::npos) << report;
  EXPECT_EQ(report.find("idle"), std::string::npos) << report;
  EXPECT_TRUE(registry.Snapshot().DeltaReport(registry.Snapshot()).empty());
}

class TraceRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Disable();
    TraceRecorder::Clear();
  }
  void TearDown() override {
    TraceRecorder::Disable();
    TraceRecorder::Clear();
  }
};

TEST_F(TraceRecorderTest, DisabledSpanIsNoop) {
  {
    Span span("noop", "test");
    EXPECT_FALSE(span.recording());
    EXPECT_EQ(TraceRecorder::CurrentSpanId(), 0);
  }
  EXPECT_TRUE(TraceRecorder::Events().empty());
}

TEST_F(TraceRecorderTest, NestedSpansRecordParentChild) {
  TraceRecorder::Enable();
  int64_t outer_id = 0;
  int64_t inner_id = 0;
  {
    Span outer("outer", "test");
    ASSERT_TRUE(outer.recording());
    outer_id = outer.id();
    EXPECT_EQ(TraceRecorder::CurrentSpanId(), outer_id);
    {
      Span inner("inner", "test");
      inner.AddArg("rows", "42");
      inner_id = inner.id();
      EXPECT_EQ(TraceRecorder::CurrentSpanId(), inner_id);
    }
    EXPECT_EQ(TraceRecorder::CurrentSpanId(), outer_id);
  }
  EXPECT_EQ(TraceRecorder::CurrentSpanId(), 0);

  std::vector<SpanEvent> events = TraceRecorder::Events();
  ASSERT_EQ(events.size(), 2u);  // inner finishes (and records) first
  const SpanEvent& inner = events[0];
  const SpanEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.parent_id, outer_id);
  EXPECT_EQ(outer.parent_id, 0);
  EXPECT_EQ(inner.span_id, inner_id);
  EXPECT_EQ(inner.args.at("rows"), "42");
  EXPECT_GE(outer.duration_micros, inner.duration_micros);
  EXPECT_LE(outer.start_micros, inner.start_micros);
}

TEST_F(TraceRecorderTest, ChromeExportRoundTrips) {
  TraceRecorder::Enable();
  {
    Span span("stmt", "engine");
    span.AddArg("sql", "SELECT 1");
  }
  Json trace = TraceRecorder::ExportChromeTrace();
  std::string dump = trace.Dump();
  // Golden structural facts of the trace_event format.
  EXPECT_NE(dump.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(dump.find("\"ph\":\"X\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"cat\":\"engine\""), std::string::npos);

  std::vector<SpanEvent> original = TraceRecorder::Events();
  std::vector<SpanEvent> restored = TraceRecorder::EventsFromJson(trace);
  ASSERT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored[0].name, original[0].name);
  EXPECT_EQ(restored[0].category, original[0].category);
  EXPECT_EQ(restored[0].span_id, original[0].span_id);
  EXPECT_EQ(restored[0].parent_id, original[0].parent_id);
  EXPECT_EQ(restored[0].pid, original[0].pid);
  EXPECT_EQ(restored[0].args.at("sql"), "SELECT 1");
}

TEST_F(TraceRecorderTest, WriteToMergesExtraEvents) {
  TraceRecorder::Enable();
  { Span span("local", "test"); }
  SpanEvent remote;
  remote.name = "remote";
  remote.category = "server";
  remote.span_id = 9001;
  remote.pid = 4242;
  std::string path = ::testing::TempDir() + "/obs_trace.json";
  ASSERT_TRUE(TraceRecorder::WriteTo(path, {remote}).ok());

  auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  auto parsed = Json::Parse(*text);
  ASSERT_TRUE(parsed.ok());
  std::vector<SpanEvent> events = TraceRecorder::EventsFromJson(*parsed);
  ASSERT_EQ(events.size(), 2u);
  bool saw_local = false;
  bool saw_remote = false;
  for (const SpanEvent& event : events) {
    if (event.name == "local") saw_local = true;
    if (event.name == "remote" && event.pid == 4242) saw_remote = true;
  }
  EXPECT_TRUE(saw_local);
  EXPECT_TRUE(saw_remote);
}

TEST(QueryProfileTest, TextRenderingNestsOperators) {
  QueryProfile profile;
  profile.root.label = "HashJoin";
  profile.root.detail = "1 key(s)";
  profile.root.rows_out = 5;
  profile.root.invocations = 1;
  profile.root.wall_nanos = 2'000'000;
  profile.root.build_nanos = 500'000;
  profile.root.probe_nanos = 1'000'000;
  OperatorProfile scan;
  scan.label = "Scan";
  scan.detail = "emp";
  scan.rows_out = 100;
  scan.invocations = 1;
  scan.wall_nanos = 1'000'000;
  profile.root.children.push_back(scan);
  profile.total_nanos = 3'000'000;
  profile.rows_returned = 5;

  std::vector<std::string> analyze = profile.ToTextLines(true);
  ASSERT_GE(analyze.size(), 3u);
  EXPECT_EQ(analyze[0].find("HashJoin"), 0u);
  EXPECT_NE(analyze[0].find("rows=5"), std::string::npos);
  EXPECT_NE(analyze[0].find("build="), std::string::npos);
  EXPECT_EQ(analyze[1].find("  Scan"), 0u);  // child indented
  EXPECT_NE(analyze.back().find("Total:"), std::string::npos);

  // Plain EXPLAIN omits runtime columns entirely.
  for (const std::string& line : profile.ToTextLines(false)) {
    EXPECT_EQ(line.find("rows="), std::string::npos) << line;
    EXPECT_EQ(line.find("time="), std::string::npos) << line;
  }

  std::string json = profile.ToJson().Dump();
  EXPECT_NE(json.find("\"HashJoin\""), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
}

}  // namespace
}  // namespace ldv::obs
