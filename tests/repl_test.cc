// WAL streaming replication (DESIGN.md §14): live commits stream to the
// standby and apply deterministically, semi-sync commit acks wait for the
// standby, a standby behind the ring catches up from segment files, writes
// on a standby are rejected until promotion, and the failover client
// follows a promotion across endpoints.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "exec/wal_redo.h"
#include "net/db_client.h"
#include "net/db_server.h"
#include "net/retrying_db_client.h"
#include "obs/metrics.h"
#include "repl/primary.h"
#include "repl/replication.h"
#include "repl/standby.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "util/fsutil.h"

namespace ldv::repl {
namespace {

bool WaitUntil(const std::function<bool()>& cond, int timeout_millis = 15000) {
  for (int elapsed = 0; elapsed < timeout_millis; elapsed += 10) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

/// One in-process "server": database + engine (WAL attached), replication
/// manager, socket server with the repl verbs wired — the same hookup
/// ldv_server_main does — plus an optional standby replicator.
struct Node {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<net::EngineHandle> engine;
  std::unique_ptr<ReplicationManager> manager;
  std::unique_ptr<net::DbServer> server;
  std::unique_ptr<StandbyReplicator> replicator;

  ~Node() {
    if (manager != nullptr) manager->Shutdown();
    if (server != nullptr) server->Stop();
    if (replicator != nullptr) replicator->Stop();
  }

  Result<exec::ResultSet> Run(const std::string& sql) {
    net::DbRequest request;
    request.sql = sql;
    return engine->Execute(request);
  }

  std::string Scan(const std::string& table) {
    auto rows = Run("SELECT id, v FROM " + table + " ORDER BY id, v");
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    std::string out;
    if (!rows.ok()) return out;
    for (const auto& row : rows->rows) {
      out += std::to_string(row[0].AsInt()) + "=" +
             std::to_string(row[1].AsInt()) + ";";
    }
    return out;
  }

  uint64_t last_lsn() { return engine->wal()->last_appended_lsn(); }
};

class ReplTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("repl_test");
    ASSERT_TRUE(dir.ok());
    root_ = *dir;
  }

  void TearDown() override { (void)RemoveAll(root_); }

  std::unique_ptr<Node> MakeNode(const std::string& name,
                                 ReplicationManager::Options manager_options,
                                 const std::string& replicate_from = "") {
    auto node = std::make_unique<Node>();
    node->db = std::make_unique<storage::Database>();
    const std::string data_dir = JoinPath(root_, name + "-data");
    const std::string wal_dir = JoinPath(root_, name + "-wal");
    storage::RecoveryStats stats;
    Status recovered =
        exec::RecoverWithWal(node->db.get(), data_dir, wal_dir, &stats);
    EXPECT_TRUE(recovered.ok()) << recovered.ToString();
    auto wal = storage::Wal::Open(wal_dir, storage::WalOptions{},
                                  stats.next_lsn);
    EXPECT_TRUE(wal.ok()) << wal.status().ToString();
    node->engine = std::make_unique<net::EngineHandle>(node->db.get());
    net::EngineDurabilityOptions durability;
    durability.data_dir = data_dir;
    node->engine->AttachWal(std::move(*wal), durability);
    node->manager = std::make_unique<ReplicationManager>(node->engine->wal(),
                                                         manager_options);
    ReplicationManager* manager = node->manager.get();
    node->engine->set_commit_ack_barrier(
        [manager](uint64_t lsn) { return manager->WaitDurable(lsn); });
    node->engine->set_wal_retire_floor(
        [manager] { return manager->RetireFloor(); });
    node->server = std::make_unique<net::DbServer>(node->engine.get(),
                                                   JoinPath(root_, name));
    if (!replicate_from.empty()) {
      StandbyReplicator::Options standby_options;
      standby_options.standby_name = name;
      node->replicator = std::make_unique<StandbyReplicator>(
          node->engine.get(), replicate_from, standby_options);
      node->manager->set_role("standby");
    }
    StandbyReplicator* replicator = node->replicator.get();
    node->server->set_repl_handler(
        [manager, replicator](const net::DbRequest& request)
            -> Result<exec::ResultSet> {
          if (request.kind == net::RequestKind::kPromote &&
              replicator != nullptr) {
            const uint64_t applied = replicator->Promote();
            manager->set_role("primary");
            return MakePromoteResult("primary", applied);
          }
          return manager->HandleRequest(request);
        });
    Status started = node->server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    if (node->replicator != nullptr) node->replicator->Start();
    return node;
  }

  std::unique_ptr<Node> MakePrimary(const std::string& name = "primary") {
    ReplicationManager::Options options;
    options.ack_timeout_millis = 0;  // commits wait for registered standbys
    return MakeNode(name, options);
  }

  std::unique_ptr<Node> MakeStandby(Node* primary,
                                    const std::string& name = "standby") {
    return MakeNode(name, ReplicationManager::Options(),
                    primary->server->socket_path());
  }

  std::string root_;
};

TEST_F(ReplTest, StreamsLiveCommitsAndServesSnapshotReads) {
  auto primary = MakePrimary();
  auto standby = MakeStandby(primary.get());
  ASSERT_TRUE(WaitUntil([&] { return primary->manager->standby_count() >= 1; }));

  ASSERT_TRUE(primary->Run("CREATE TABLE t (id INT, v INT)").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(primary->Run("INSERT INTO t VALUES (" + std::to_string(i) +
                             ", " + std::to_string(i * 10) + ")")
                    .ok());
  }
  ASSERT_TRUE(primary->Run("UPDATE t SET v = 999 WHERE id = 3").ok());

  // Semi-sync: once the commit returned, the standby has already durably
  // appended AND applied it — no wait needed before reading.
  EXPECT_EQ(standby->replicator->applied_lsn(), primary->last_lsn());
  EXPECT_EQ(standby->Scan("t"), primary->Scan("t"));
}

TEST_F(ReplTest, StandbyRejectsWritesUntilPromoted) {
  auto primary = MakePrimary();
  auto standby = MakeStandby(primary.get());
  ASSERT_TRUE(WaitUntil([&] { return primary->manager->standby_count() >= 1; }));
  ASSERT_TRUE(primary->Run("CREATE TABLE t (id INT, v INT)").ok());

  Status insert = standby->Run("INSERT INTO t VALUES (1, 1)").status();
  ASSERT_FALSE(insert.ok());
  EXPECT_TRUE(net::IsReadOnlyStandbyError(insert)) << insert.ToString();
  Status begin = standby->Run("BEGIN").status();
  EXPECT_TRUE(net::IsReadOnlyStandbyError(begin)) << begin.ToString();
  // Reads pass through.
  EXPECT_TRUE(standby->Run("SELECT id, v FROM t").ok());
  // Other NotSupported errors are not mistaken for the standby rejection.
  EXPECT_FALSE(net::IsReadOnlyStandbyError(Status::NotSupported("nope")));

  // Promotion over the wire (what `ldv promote` sends).
  auto client = net::SocketDbClient::Connect(standby->server->socket_path());
  ASSERT_TRUE(client.ok());
  auto applied = net::PromoteServer(client->get());
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied, standby->last_lsn());
  EXPECT_TRUE(standby->Run("INSERT INTO t VALUES (1, 1)").ok());
  // Idempotent on re-issue.
  auto again = net::PromoteServer(client->get());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
}

TEST_F(ReplTest, ColdStandbyCatchesUpFromSegmentFiles) {
  ReplicationManager::Options tiny_ring;
  tiny_ring.ack_timeout_millis = 0;
  tiny_ring.ring_capacity_bytes = 128;  // evicts after every few commits
  auto primary = MakeNode("primary", tiny_ring);
  ASSERT_TRUE(primary->Run("CREATE TABLE t (id INT, v INT)").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(primary->Run("INSERT INTO t VALUES (" + std::to_string(i) +
                             ", " + std::to_string(i) + ")")
                    .ok());
  }

  obs::Counter* disk_catchups =
      obs::MetricsRegistry::Global().counter("repl.disk_catchup_batches");
  const int64_t catchups_before = disk_catchups->Value();
  // The standby starts at LSN 0; the ring only holds the last few commits,
  // so the gap must come from the segment files.
  auto standby = MakeStandby(primary.get());
  ASSERT_TRUE(WaitUntil(
      [&] { return standby->replicator->applied_lsn() == primary->last_lsn(); }));
  EXPECT_EQ(standby->Scan("t"), primary->Scan("t"));
  EXPECT_GT(disk_catchups->Value(), catchups_before);
  EXPECT_TRUE(standby->replicator->last_error().empty());
  EXPECT_FALSE(standby->replicator->fatal());
}

TEST_F(ReplTest, ClientFailsOverAcrossPromotion) {
  auto primary = MakePrimary();
  auto standby = MakeStandby(primary.get());
  ASSERT_TRUE(WaitUntil([&] { return primary->manager->standby_count() >= 1; }));
  ASSERT_TRUE(primary->Run("CREATE TABLE t (id INT, v INT)").ok());

  auto client = net::RetryingDbClient::ForEndpoints(
      {primary->server->socket_path(), standby->server->socket_path()});
  net::DbRequest insert;
  insert.sql = "INSERT INTO t VALUES (1, 1)";
  ASSERT_TRUE(client->Execute(insert).ok());

  // Kill the primary endpoint, promote the standby: the same client object
  // must land the next write on the new primary without reconfiguration.
  primary->manager->Shutdown();
  primary->server->Stop();
  standby->replicator->Promote();
  standby->manager->set_role("primary");
  insert.sql = "INSERT INTO t VALUES (2, 2)";
  auto failed_over = client->Execute(insert);
  ASSERT_TRUE(failed_over.ok()) << failed_over.status().ToString();
  EXPECT_GE(client->reconnects(), 1);
  EXPECT_EQ(standby->Scan("t"), "1=1;2=2;");
}

TEST_F(ReplTest, WriteAgainstStandbyEndpointRotatesToPrimary) {
  auto primary = MakePrimary();
  auto standby = MakeStandby(primary.get());
  ASSERT_TRUE(WaitUntil([&] { return primary->manager->standby_count() >= 1; }));
  ASSERT_TRUE(primary->Run("CREATE TABLE t (id INT, v INT)").ok());

  // Endpoint list deliberately starts at the standby: the read-only
  // rejection (not a transport error) must drive the rotation.
  auto client = net::RetryingDbClient::ForEndpoints(
      {standby->server->socket_path(), primary->server->socket_path()});
  net::DbRequest insert;
  insert.sql = "INSERT INTO t VALUES (1, 1)";
  auto routed = client->Execute(insert);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  EXPECT_GE(client->failovers(), 1);
  EXPECT_EQ(primary->Scan("t"), "1=1;");
}

TEST_F(ReplTest, SilentStandbyIsEvictedSoCommitsProceed) {
  ReplicationManager::Options options;
  options.ack_timeout_millis = 200;  // evict quickly
  auto primary = MakeNode("primary", options);
  ASSERT_TRUE(primary->Run("CREATE TABLE t (id INT, v INT)").ok());

  // Register a standby that will never fetch again (a severed stream).
  net::DbRequest subscribe = MakeSubscribeRequest("ghost", 0);
  ASSERT_TRUE(primary->manager->HandleRequest(subscribe).ok());
  EXPECT_EQ(primary->manager->standby_count(), 1);

  obs::Counter* evictions =
      obs::MetricsRegistry::Global().counter("repl.standby_evictions");
  const int64_t evictions_before = evictions->Value();
  // The commit blocks until the ghost ages out, then proceeds.
  ASSERT_TRUE(primary->Run("INSERT INTO t VALUES (1, 1)").ok());
  EXPECT_EQ(primary->manager->standby_count(), 0);
  EXPECT_GT(evictions->Value(), evictions_before);
}

TEST_F(ReplTest, RetireFloorTracksSlowestStandby) {
  auto primary = MakeNode("primary", ReplicationManager::Options());
  EXPECT_EQ(primary->manager->RetireFloor(), UINT64_MAX);
  ASSERT_TRUE(
      primary->manager->HandleRequest(MakeSubscribeRequest("a", 12)).ok());
  ASSERT_TRUE(
      primary->manager->HandleRequest(MakeSubscribeRequest("b", 7)).ok());
  // Segments holding LSN 8 and above must survive checkpoints: standby "b"
  // still needs them.
  EXPECT_EQ(primary->manager->RetireFloor(), 8u);
}

TEST_F(ReplTest, StreamedBatchDecodeIsStrict) {
  storage::WalRecord record;
  record.lsn = 1;
  record.kind = storage::WalRecordKind::kBegin;
  record.txn_id = 1;
  std::string frames = storage::EncodeWalRecord(record);
  ASSERT_TRUE(storage::DecodeWalRecords(frames).ok());
  // A torn or bit-flipped frame fails the whole batch — streamed bytes are
  // never silently truncated the way a segment tail scan is.
  EXPECT_FALSE(storage::DecodeWalRecords(frames.substr(0, frames.size() - 1))
                   .ok());
  std::string flipped = frames;
  flipped[flipped.size() / 2] ^= 0x40;
  EXPECT_FALSE(storage::DecodeWalRecords(flipped).ok());
}

TEST_F(ReplTest, StandbyCrashRecoveryResumesStream) {
  // Eviction on: the "crashed" standby's stale registration must age out
  // instead of blocking the commit that lands while it is down.
  ReplicationManager::Options options;
  options.ack_timeout_millis = 300;
  auto primary = MakeNode("primary", options);
  {
    auto standby = MakeStandby(primary.get());
    ASSERT_TRUE(
        WaitUntil([&] { return primary->manager->standby_count() >= 1; }));
    ASSERT_TRUE(primary->Run("CREATE TABLE t (id INT, v INT)").ok());
    ASSERT_TRUE(primary->Run("INSERT INTO t VALUES (1, 1)").ok());
    ASSERT_TRUE(WaitUntil([&] {
      return standby->replicator->applied_lsn() == primary->last_lsn();
    }));
    // "Crash": tear the standby down without promotion; its local WAL holds
    // everything it acked.
  }
  // This commit stalls on the dead standby's registration until the
  // 300 ms eviction fires, then proceeds.
  ASSERT_TRUE(primary->Run("INSERT INTO t VALUES (2, 2)").ok());

  // Restart: recovery replays the standby's own WAL, the replicator resumes
  // the stream from the recovered LSN.
  auto standby = MakeStandby(primary.get());
  ASSERT_TRUE(WaitUntil(
      [&] { return standby->replicator->applied_lsn() == primary->last_lsn(); }));
  EXPECT_EQ(standby->Scan("t"), primary->Scan("t"));
}

}  // namespace
}  // namespace ldv::repl
