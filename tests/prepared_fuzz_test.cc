// Randomized differential fuzzer for prepared statements (DESIGN.md §13).
//
// For every seed, two engines are populated with identical data. One runs a
// generated parameterized statement as PREPARE / EXECUTE (?-placeholders,
// values bound at execute time — cacheable SELECTs go through the shared
// plan cache, everything else through literal substitution); the other runs
// the same statement with the literals spelled out in the SQL text. The two
// must be bit-identical: same rows in the same order, same affected counts,
// same lineage, and — after DML — the same table contents.
//
// The whole sweep runs at dop 1 and dop 8 (morsel-parallel execution), so a
// cached plan shared across worker threads is part of what the differential
// checks. Wired into tools/check.sh --tsan.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "exec/plan_cache.h"
#include "net/db_client.h"
#include "obs/metrics.h"
#include "storage/database.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace ldv::net {
namespace {

using storage::Database;
using storage::Value;

constexpr int kSeeds = 220;
constexpr int kStatementsPerSeed = 5;

Result<exec::ResultSet> Exec(EngineHandle* engine, const std::string& sql) {
  DbRequest request;
  request.sql = sql;
  return engine->ExecuteSession(request, EngineHandle::kLocalSession);
}

/// Renders a value as a SQL literal. The same rendered text is used in the
/// EXECUTE argument list and in the inlined statement, so both paths parse
/// the exact same token.
std::string ToSqlLiteral(const Value& v) {
  switch (v.type()) {
    case storage::ValueType::kNull:
      return "NULL";
    case storage::ValueType::kInt64:
      return std::to_string(v.AsInt());
    case storage::ValueType::kDouble: {
      std::string text = StrFormat("%.17g", v.AsDouble());
      if (text.find('.') == std::string::npos &&
          text.find('e') == std::string::npos) {
        text += ".0";  // keep the literal double-typed
      }
      return text;
    }
    case storage::ValueType::kString: {
      std::string out = "'";
      for (char c : v.AsString()) {
        out.push_back(c);
        if (c == '\'') out.push_back('\'');  // '' escapes a quote
      }
      out += "'";
      return out;
    }
  }
  return "NULL";
}

const char* kNames[] = {"alpha", "beta", "gamma", "delta", "it's"};

Value RandInt(Rng* rng) { return Value::Int(static_cast<int64_t>(rng->Next() % 40) - 5); }
// Eighths are exactly representable, so %.17g round-trips bit-exactly.
Value RandDouble(Rng* rng) {
  return Value::Real((static_cast<double>(rng->Next() % 1000) - 300) / 8.0);
}
Value RandString(Rng* rng) { return Value::Str(kNames[rng->Next() % 5]); }

/// One generated statement: text with `?` placeholders plus the values to
/// bind, in placeholder order.
struct GenStmt {
  std::string sql;
  std::vector<Value> params;
};

/// Appends `count` predicate terms over the items table, each consuming one
/// placeholder.
void AppendItemsPred(Rng* rng, int count, GenStmt* g) {
  for (int i = 0; i < count; ++i) {
    if (i > 0) g->sql += (rng->Next() % 3 == 0) ? " OR " : " AND ";
    switch (rng->Next() % 6) {
      case 0:
        g->sql += "id < ?";
        g->params.push_back(RandInt(rng));
        break;
      case 1:
        g->sql += "grp = ?";
        g->params.push_back(Value::Int(static_cast<int64_t>(rng->Next() % 6)));
        break;
      case 2:
        g->sql += "price > ?";
        g->params.push_back(RandDouble(rng));
        break;
      case 3:
        g->sql += "name = ?";
        g->params.push_back(RandString(rng));
        break;
      case 4:
        g->sql += "id + grp < ?";
        g->params.push_back(RandInt(rng));
        break;
      default:
        g->sql += "price <= ?";
        // Int bound against a double column: exercises cross-type binding.
        g->params.push_back(RandInt(rng));
        break;
    }
  }
}

GenStmt GenerateStatement(Rng* rng) {
  GenStmt g;
  // 1..8 placeholders; shapes that take fewer predicate slots reserve the
  // rest for their own placeholders.
  const int want = 1 + static_cast<int>(rng->Next() % 8);
  switch (rng->Next() % 8) {
    case 0:
      g.sql = "SELECT id, grp, price, name FROM items WHERE ";
      AppendItemsPred(rng, want, &g);
      g.sql += " ORDER BY id";
      break;
    case 1:
      g.sql = "SELECT grp, count(*) AS c, sum(price) AS s FROM items WHERE ";
      AppendItemsPred(rng, want, &g);
      g.sql += " GROUP BY grp ORDER BY grp";
      break;
    case 2:
      g.sql =
          "SELECT i.id, t.tag FROM items i, tags t "
          "WHERE i.id = t.item_id AND t.weight < ? AND ";
      g.params.push_back(RandDouble(rng));
      AppendItemsPred(rng, std::max(1, want - 1), &g);
      g.sql += " ORDER BY i.id, t.tag";
      break;
    case 3:
      g.sql = "SELECT count(*) FROM items WHERE ";
      AppendItemsPred(rng, want, &g);
      break;
    case 4:
      // Provenance SELECT: not plan-cacheable, takes the substitution path;
      // the differential covers lineage identity.
      g.sql = "PROVENANCE SELECT id, price FROM items WHERE ";
      AppendItemsPred(rng, want, &g);
      g.sql += " ORDER BY id";
      break;
    case 5:
      g.sql = "UPDATE items SET price = ?, grp = ? WHERE ";
      g.params.push_back(RandDouble(rng));
      g.params.push_back(Value::Int(static_cast<int64_t>(rng->Next() % 6)));
      AppendItemsPred(rng, std::max(1, want - 2), &g);
      break;
    case 6:
      g.sql = "DELETE FROM tags WHERE weight < ? OR tag = ?";
      g.params.push_back(RandDouble(rng));
      g.params.push_back(RandString(rng));
      break;
    default:
      g.sql = "INSERT INTO items VALUES (?, ?, ?, ?)";
      g.params.push_back(RandInt(rng));
      g.params.push_back(Value::Int(static_cast<int64_t>(rng->Next() % 6)));
      // Occasionally bind NULL through a placeholder.
      g.params.push_back(rng->Next() % 7 == 0 ? Value::Null()
                                              : RandDouble(rng));
      g.params.push_back(RandString(rng));
      break;
  }
  return g;
}

/// The statement with every placeholder replaced by its literal rendering,
/// in order.
std::string InlineLiterals(const GenStmt& g) {
  std::string out;
  size_t next = 0;
  for (char c : g.sql) {
    if (c == '?') {
      out += ToSqlLiteral(g.params[next++]);
    } else {
      out.push_back(c);
    }
  }
  EXPECT_EQ(next, g.params.size());
  return out;
}

void PopulateFixture(EngineHandle* engine) {
  ASSERT_TRUE(
      Exec(engine,
           "CREATE TABLE items (id INT, grp INT, price DOUBLE, name TEXT)")
          .ok());
  ASSERT_TRUE(
      Exec(engine, "CREATE TABLE tags (item_id INT, tag TEXT, weight DOUBLE)")
          .ok());
  std::string items = "INSERT INTO items VALUES ";
  for (int i = 0; i < 40; ++i) {
    if (i > 0) items += ",";
    items += StrFormat("(%d, %d, %s, %s)", i, i % 5,
                       StrFormat("%.17g", i * 1.5 - 7).c_str(),
                       ToSqlLiteral(Value::Str(kNames[i % 5])).c_str());
  }
  ASSERT_TRUE(Exec(engine, items).ok());
  std::string tags = "INSERT INTO tags VALUES ";
  for (int i = 0; i < 60; ++i) {
    if (i > 0) tags += ",";
    tags += StrFormat("(%d, %s, %s)", i % 40,
                      ToSqlLiteral(Value::Str(kNames[(i * 3) % 5])).c_str(),
                      StrFormat("%.17g", (i % 16) / 8.0 - 0.5).c_str());
  }
  ASSERT_TRUE(Exec(engine, tags).ok());
}

void ExpectIdentical(const exec::ResultSet& prepared,
                     const exec::ResultSet& direct, const std::string& label) {
  ASSERT_EQ(prepared.rows.size(), direct.rows.size()) << label;
  for (size_t i = 0; i < prepared.rows.size(); ++i) {
    EXPECT_EQ(prepared.rows[i], direct.rows[i]) << label << " row " << i;
  }
  EXPECT_EQ(prepared.affected, direct.affected) << label;
  EXPECT_EQ(prepared.has_provenance, direct.has_provenance) << label;
  ASSERT_EQ(prepared.lineage.size(), direct.lineage.size()) << label;
  for (size_t i = 0; i < prepared.lineage.size(); ++i) {
    EXPECT_EQ(prepared.lineage[i], direct.lineage[i])
        << label << " lineage " << i;
  }
  EXPECT_EQ(prepared.schema == direct.schema, true) << label;
}

void RunDifferential(int dop) {
  ThreadPool::SetDefaultDop(dop);
  obs::Counter* hits = obs::MetricsRegistry::Global().counter("plan_cache.hit");
  const int64_t hits_before = hits->Value();
  for (int seed = 0; seed < kSeeds; ++seed) {
    Rng rng(0x5eed0000 + static_cast<uint64_t>(seed));
    Database db_prepared;
    Database db_direct;
    EngineHandle prepared(&db_prepared);
    EngineHandle direct(&db_direct);
    PopulateFixture(&prepared);
    PopulateFixture(&direct);
    for (int s = 0; s < kStatementsPerSeed; ++s) {
      GenStmt g = GenerateStatement(&rng);
      const std::string inlined = InlineLiterals(g);
      const std::string label =
          StrFormat("seed=%d stmt=%d dop=%d: ", seed, s, dop) + inlined;

      ASSERT_TRUE(Exec(&prepared, "PREPARE ps AS " + g.sql).ok()) << label;
      std::string args;
      for (const Value& v : g.params) {
        if (!args.empty()) args += ", ";
        args += ToSqlLiteral(v);
      }
      Result<exec::ResultSet> via_execute =
          Exec(&prepared, g.params.empty() ? "EXECUTE ps"
                                           : "EXECUTE ps (" + args + ")");
      Result<exec::ResultSet> via_literals = Exec(&direct, inlined);
      ASSERT_EQ(via_execute.ok(), via_literals.ok())
          << label << "\nexecute: "
          << (via_execute.ok() ? "ok" : via_execute.status().ToString())
          << "\ndirect: "
          << (via_literals.ok() ? "ok" : via_literals.status().ToString());
      if (via_execute.ok()) {
        ExpectIdentical(*via_execute, *via_literals, label);
      }
      // Run an EXECUTE of the same handle twice for cacheable statements:
      // the second one must come from the shared plan and stay identical.
      Result<exec::ResultSet> again =
          Exec(&prepared, g.params.empty() ? "EXECUTE ps"
                                           : "EXECUTE ps (" + args + ")");
      Result<exec::ResultSet> direct_again = Exec(&direct, inlined);
      ASSERT_EQ(again.ok(), direct_again.ok()) << label;
      if (again.ok()) ExpectIdentical(*again, *direct_again, label + " (2nd)");
      ASSERT_TRUE(Exec(&prepared, "DEALLOCATE ps").ok()) << label;
    }
    // After the DML mix, both databases must hold identical contents.
    for (const char* probe :
         {"SELECT id, grp, price, name FROM items ORDER BY id, grp, price",
          "SELECT item_id, tag, weight FROM tags ORDER BY item_id, tag, "
          "weight"}) {
      Result<exec::ResultSet> a = Exec(&prepared, probe);
      Result<exec::ResultSet> b = Exec(&direct, probe);
      ASSERT_TRUE(a.ok() && b.ok()) << "seed=" << seed;
      ExpectIdentical(*a, *b, StrFormat("seed=%d final contents: ", seed) +
                                  probe);
    }
  }
  // Sanity: the sweep must actually have exercised the shared plan cache
  // (repeat EXECUTEs of cacheable SELECTs hit).
  EXPECT_GT(hits->Value(), hits_before);
}

TEST(PreparedFuzzTest, DifferentialSequential) { RunDifferential(1); }

TEST(PreparedFuzzTest, DifferentialParallel8) { RunDifferential(8); }

}  // namespace
}  // namespace ldv::net
