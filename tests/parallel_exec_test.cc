#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "exec/operators.h"
#include "storage/database.h"
#include "util/rng.h"
#include "util/strings.h"

namespace ldv::exec {
namespace {

using storage::Database;
using storage::TupleVid;
using storage::Value;

/// Serial-vs-parallel equivalence: every query must return bit-identical
/// results (row values, row order, lineage sets, ORDER BY tie order, GROUP
/// BY contents) at --threads 1, 4, and 8. The engine guarantees this by
/// decomposing work into fixed-size morsels whose boundaries never depend
/// on the thread count (DESIGN.md §10); these tests are the contract.
class ParallelExecTest : public ::testing::Test {
 protected:
  void SetUp() override { exec_ = std::make_unique<Executor>(&db_); }

  ResultSet Run(const std::string& sql, int threads) {
    ExecOptions options;
    options.threads = threads;
    options.query_id = ++next_query_id_;
    options.process_id = 9;
    auto result = exec_->Execute(sql, options);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? std::move(result).value() : ResultSet{};
  }

  /// Asserts threads=4 and threads=8 reproduce the serial result exactly.
  void ExpectEquivalent(const std::string& sql) {
    ResultSet serial = Run(sql, 1);
    for (int threads : {4, 8}) {
      ResultSet parallel = Run(sql, threads);
      ASSERT_EQ(parallel.rows.size(), serial.rows.size())
          << sql << " threads=" << threads;
      EXPECT_EQ(parallel.Fingerprint(), serial.Fingerprint())
          << sql << " threads=" << threads;
      for (size_t i = 0; i < serial.rows.size(); ++i) {
        EXPECT_EQ(parallel.rows[i], serial.rows[i])
            << sql << " threads=" << threads << " row " << i;
      }
      ASSERT_EQ(parallel.lineage.size(), serial.lineage.size());
      for (size_t i = 0; i < serial.lineage.size(); ++i) {
        EXPECT_EQ(parallel.lineage[i], serial.lineage[i])
            << sql << " threads=" << threads << " lineage of row " << i;
      }
      ASSERT_EQ(parallel.prov_tuples.size(), serial.prov_tuples.size());
    }
  }

  /// Populates `items` with `n` rows spanning several morsels; values repeat
  /// so GROUP BY / DISTINCT / joins have real work to do.
  void FillItems(size_t n, uint64_t seed) {
    (void)Run("CREATE TABLE items (id INT, grp INT, val DOUBLE, tag TEXT)", 1);
    Rng rng(seed);
    std::string insert;
    size_t pending = 0;
    for (size_t i = 0; i < n; ++i) {
      if (pending == 0) insert = "INSERT INTO items VALUES ";
      if (pending > 0) insert += ", ";
      insert += "(" + std::to_string(i) + ", " +
                std::to_string(rng.Uniform(0, 37)) + ", " +
                std::to_string(rng.Uniform(-500, 500)) + "." +
                std::to_string(rng.Uniform(0, 99)) + ", 't" +
                std::to_string(rng.Uniform(0, 11)) + "')";
      if (++pending == 512 || i + 1 == n) {
        (void)Run(insert, 1);
        pending = 0;
      }
    }
  }

  Database db_;
  std::unique_ptr<Executor> exec_;
  int64_t next_query_id_ = 0;
};

TEST_F(ParallelExecTest, ScanFilterProject) {
  FillItems(3 * kMorselRows + 517, /*seed=*/11);
  ExpectEquivalent("SELECT id, val * 2 FROM items WHERE grp < 19");
  ExpectEquivalent("SELECT tag FROM items WHERE val > 0 AND id % 3 = 0");
}

TEST_F(ParallelExecTest, AggregateAndDistinct) {
  FillItems(4 * kMorselRows + 33, /*seed=*/12);
  // Group emission order is first appearance over the input; double sums
  // accumulate in morsel order — both must survive parallelism bit-for-bit.
  ExpectEquivalent(
      "SELECT grp, count(*), sum(val), avg(val), min(val), max(val) "
      "FROM items GROUP BY grp");
  ExpectEquivalent("SELECT DISTINCT grp, tag FROM items");
  ExpectEquivalent("SELECT sum(val), count(id) FROM items");
}

TEST_F(ParallelExecTest, OrderByStabilityAcrossThreadCounts) {
  FillItems(3 * kMorselRows + 100, /*seed=*/13);
  // grp has ~38 distinct values over thousands of rows: heavy ties, so a
  // non-stable parallel merge would reorder equal keys.
  ExpectEquivalent("SELECT id, grp FROM items ORDER BY grp");
  ExpectEquivalent("SELECT id, grp, tag FROM items ORDER BY grp DESC, tag");
  ExpectEquivalent("SELECT id, val FROM items ORDER BY val LIMIT 57");
}

TEST_F(ParallelExecTest, JoinEquivalence) {
  FillItems(2 * kMorselRows + 700, /*seed=*/14);
  (void)Run("CREATE TABLE grps (g INT, label TEXT)", 1);
  (void)Run(
      "INSERT INTO grps VALUES (0,'a'),(1,'b'),(2,'c'),(3,'d'),(4,'e'),"
      "(5,'f'),(6,'g'),(7,'h'),(8,'i'),(9,'j'),(3,'d2'),(7,'h2')", 1);
  // Duplicate right keys (3, 7): equal-key match order must be ascending
  // right-row order at every DOP.
  ExpectEquivalent(
      "SELECT i.id, g.label FROM items i, grps g WHERE i.grp = g.g "
      "AND i.id < 3000");
  ExpectEquivalent(
      "SELECT g.label, count(*) FROM items i, grps g WHERE i.grp = g.g "
      "GROUP BY g.label");
}

TEST_F(ParallelExecTest, LineageEquivalence) {
  FillItems(2 * kMorselRows + 91, /*seed=*/15);
  db_.FindTable("items")->set_provenance_tracking(true);
  ExpectEquivalent("PROVENANCE SELECT id FROM items WHERE grp = 5");
  ExpectEquivalent(
      "PROVENANCE SELECT grp, sum(val) FROM items WHERE val > 0 "
      "GROUP BY grp");
  ExpectEquivalent("PROVENANCE SELECT DISTINCT tag FROM items");
}

TEST_F(ParallelExecTest, RandomizedQueriesAcrossSeeds) {
  FillItems(3 * kMorselRows + 777, /*seed=*/16);
  (void)Run("CREATE TABLE dims (k INT, w DOUBLE)", 1);
  (void)Run(
      "INSERT INTO dims VALUES (0, 0.5), (1, 1.5), (2, 2.5), (3, 3.5), "
      "(4, 4.5), (5, 5.5), (6, 6.5), (7, 7.5)", 1);
  Rng rng(2026);
  const std::vector<std::string> filters = {
      "", " WHERE val > 0", " WHERE grp < 20", " WHERE id % 7 = 1",
      " WHERE tag = 't3'"};
  for (int q = 0; q < 20; ++q) {
    std::string filter = filters[rng.Next() % filters.size()];
    switch (rng.Next() % 4) {
      case 0:
        ExpectEquivalent("SELECT id, val FROM items" + filter);
        break;
      case 1:
        ExpectEquivalent("SELECT grp, count(*), sum(val) FROM items" + filter +
                         " GROUP BY grp");
        break;
      case 2:
        ExpectEquivalent("SELECT id, grp, val FROM items" + filter +
                         " ORDER BY grp, val LIMIT " +
                         std::to_string(rng.Uniform(1, 4000)));
        break;
      default:
        ExpectEquivalent(
            "SELECT i.id, d.w FROM items i, dims d WHERE i.grp = d.k" +
            (filter.empty() ? std::string()
                            : " AND" + filter.substr(6)));
        break;
    }
  }
}

TEST_F(ParallelExecTest, ExplainAnalyzeReportsWorkers) {
  FillItems(3 * kMorselRows, /*seed=*/17);
  ExecOptions options;
  options.threads = 4;
  auto result =
      exec_->Execute("EXPLAIN ANALYZE SELECT grp, count(*) FROM items "
                     "GROUP BY grp", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->profile, nullptr);
  // The scan fans out over 3 morsels; the profile must say so.
  std::string rendered;
  for (const std::string& line : result->profile->ToTextLines(true)) {
    rendered += line + "\n";
  }
  EXPECT_NE(rendered.find("workers="), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("morsels="), std::string::npos) << rendered;
}

TEST_F(ParallelExecTest, SerialDefaultHasNoParallelStats) {
  FillItems(2 * kMorselRows, /*seed=*/18);
  ExecOptions options;
  options.threads = 1;
  options.profile = true;
  auto result = exec_->Execute("SELECT count(*) FROM items", options);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->profile, nullptr);
  std::string rendered;
  for (const std::string& line : result->profile->ToTextLines(true)) {
    rendered += line + "\n";
  }
  EXPECT_EQ(rendered.find("workers="), std::string::npos) << rendered;
}

}  // namespace
}  // namespace ldv::exec
