#include <gtest/gtest.h>

#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>

#include <thread>

#include "net/db_client.h"
#include "net/db_server.h"
#include "net/protocol.h"
#include "net/retrying_db_client.h"
#include "obs/span.h"
#include "util/fsutil.h"

namespace ldv::net {
namespace {

using storage::Database;
using storage::Value;

exec::ResultSet MakeSampleResult() {
  exec::ResultSet r;
  r.schema = storage::Schema(
      {{"id", storage::ValueType::kInt64}, {"name", storage::ValueType::kString}});
  r.rows.push_back({Value::Int(1), Value::Str("a")});
  r.rows.push_back({Value::Int(2), Value::Null()});
  r.affected = 2;
  r.has_provenance = true;
  r.lineage.push_back({{1, 10, 3}});
  r.lineage.push_back({{1, 11, 3}, {2, 4, 1}});
  exec::ProvTupleRecord prov;
  prov.vid = {1, 10, 3};
  prov.table = "t";
  prov.values = {Value::Int(10), Value::Str("x")};
  r.prov_tuples.push_back(prov);
  exec::DmlRecord dml;
  dml.kind = exec::DmlRecord::Kind::kUpdated;
  dml.table = "t";
  dml.vid = {1, 10, 4};
  dml.prior = {1, 10, 3};
  dml.has_prior = true;
  r.dml.push_back(dml);
  return r;
}

TEST(ProtocolTest, RequestRoundTrip) {
  DbRequest request;
  request.sql = "SELECT * FROM t WHERE name = 'x''y'";
  request.process_id = 42;
  request.query_id = 7;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->sql, request.sql);
  EXPECT_EQ(decoded->process_id, 42);
  EXPECT_EQ(decoded->query_id, 7);
}

TEST(ProtocolTest, RequestKindRoundTripsAndOldFramesDefaultToQuery) {
  DbRequest request;
  request.kind = RequestKind::kStats;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, RequestKind::kStats);

  // A frame from before the kind byte existed (e.g. an old replay log)
  // still decodes, defaulting to a plain query. Strip the trailing timeout
  // varint (one byte for timeout 0) and the kind byte.
  DbRequest old_style;
  old_style.sql = "SELECT 1";
  old_style.process_id = 3;
  old_style.query_id = 4;
  std::string encoded = EncodeRequest(old_style);
  encoded.pop_back();  // strip the empty params tuple (count 0)
  encoded.pop_back();  // strip the empty handle (length 0)
  encoded.pop_back();  // strip the trailing timeout varint
  encoded.pop_back();  // strip the kind byte
  auto legacy = DecodeRequest(encoded);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->kind, RequestKind::kQuery);
  EXPECT_EQ(legacy->sql, "SELECT 1");
  EXPECT_EQ(legacy->timeout_millis, 0);

  // A kind-byte-era frame (no timeout field) decodes with no per-request
  // timeout.
  encoded.push_back(static_cast<char>(RequestKind::kStats));
  auto kind_only = DecodeRequest(encoded);
  ASSERT_TRUE(kind_only.ok());
  EXPECT_EQ(kind_only->kind, RequestKind::kStats);
  EXPECT_EQ(kind_only->timeout_millis, 0);

  // An out-of-range kind byte is rejected, not misinterpreted.
  encoded.pop_back();
  encoded.push_back('\x7f');
  EXPECT_FALSE(DecodeRequest(encoded).ok());
}

TEST(ProtocolTest, TimeoutFieldRoundTrips) {
  DbRequest request;
  request.sql = "SELECT 1";
  request.timeout_millis = 1500;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->timeout_millis, 1500);
  EXPECT_EQ(decoded->kind, RequestKind::kQuery);
}

TEST(ProtocolTest, ResultSetRoundTrip) {
  exec::ResultSet original = MakeSampleResult();
  auto decoded = DecodeResponse(EncodeResponse(Status::Ok(), original));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->schema.ToString(), original.schema.ToString());
  ASSERT_EQ(decoded->rows.size(), 2u);
  EXPECT_EQ(decoded->rows[0][1].AsString(), "a");
  EXPECT_TRUE(decoded->rows[1][1].is_null());
  EXPECT_EQ(decoded->affected, 2);
  ASSERT_EQ(decoded->lineage.size(), 2u);
  EXPECT_EQ(decoded->lineage[1].size(), 2u);
  EXPECT_EQ(decoded->lineage[1][1].rowid, 4);
  ASSERT_EQ(decoded->prov_tuples.size(), 1u);
  EXPECT_EQ(decoded->prov_tuples[0].table, "t");
  ASSERT_EQ(decoded->dml.size(), 1u);
  EXPECT_TRUE(decoded->dml[0].has_prior);
  EXPECT_EQ(decoded->Fingerprint(), original.Fingerprint());
}

TEST(ProtocolTest, ErrorResponseRoundTrip) {
  auto decoded =
      DecodeResponse(EncodeResponse(Status::NotFound("no such table"), {}));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(decoded.status().message(), "no such table");
}

TEST(ProtocolTest, DecodeGarbageFails) {
  EXPECT_FALSE(DecodeResponse("zz").ok());
  EXPECT_FALSE(DecodeRequest("").ok());
}

TEST(EngineHandleTest, ExecutesAndSerializes) {
  Database db;
  EngineHandle engine(&db);
  LocalDbClient client(&engine);
  ASSERT_TRUE(client.Query("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(client.Query("INSERT INTO t VALUES (1), (2)").ok());
  auto result = client.Query("SELECT count(*) FROM t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].AsInt(), 2);
  EXPECT_FALSE(client.Query("SELECT * FROM missing").ok());
}

TEST(EngineHandleTest, RequestIdsReachProvMetadata) {
  Database db;
  EngineHandle engine(&db);
  LocalDbClient client(&engine);
  ASSERT_TRUE(client.Query("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(client.Query("INSERT INTO t VALUES (1)").ok());
  DbRequest request;
  request.sql = "PROVENANCE SELECT a FROM t";
  request.process_id = 9;
  request.query_id = 33;
  ASSERT_TRUE(client.Execute(request).ok());
  auto check = client.Query("SELECT prov_usedby, prov_p FROM t");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->rows[0][0].AsInt(), 33);
  EXPECT_EQ(check->rows[0][1].AsInt(), 9);
}

class DbServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("ldv_srv_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    engine_ = std::make_unique<EngineHandle>(&db_);
    server_ = std::make_unique<DbServer>(engine_.get(), dir_ + "/db.sock");
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    server_->Stop();
    ASSERT_TRUE(RemoveAll(dir_).ok());
  }

  std::string dir_;
  Database db_;
  std::unique_ptr<EngineHandle> engine_;
  std::unique_ptr<DbServer> server_;
};

TEST_F(DbServerTest, EndToEndQueryOverSocket) {
  auto client = SocketDbClient::Connect(server_->socket_path());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE((*client)->Query("CREATE TABLE t (a INT, b TEXT)").ok());
  ASSERT_TRUE(
      (*client)->Query("INSERT INTO t VALUES (1, 'x'), (2, 'y')").ok());
  auto result = (*client)->Query("SELECT b FROM t WHERE a = 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsString(), "y");
  // Errors propagate over the wire.
  auto bad = (*client)->Query("SELECT nope FROM t");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST_F(DbServerTest, StatsMessageReturnsServerMetricsSnapshot) {
  auto client = SocketDbClient::Connect(server_->socket_path());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Query("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE((*client)->Query("INSERT INTO t VALUES (1)").ok());

  auto stats = FetchServerStats(client->get());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  std::string dump = stats->Dump();
  // Request counting and the latency histogram both made it into the dump.
  EXPECT_NE(dump.find("server.requests"), std::string::npos);
  EXPECT_NE(dump.find("server.request_latency_micros"), std::string::npos);
  EXPECT_NE(dump.find("server.active_connections"), std::string::npos);
}

TEST_F(DbServerTest, TraceStartDumpRoundTripOverSocket) {
  auto client = SocketDbClient::Connect(server_->socket_path());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(StartServerTrace(client->get()).ok());
  ASSERT_TRUE((*client)->Query("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE((*client)->Query("SELECT a FROM t").ok());

  auto trace = FetchServerTrace(client->get());
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  std::vector<obs::SpanEvent> events =
      obs::TraceRecorder::EventsFromJson(*trace);
  // The engine records one span per executed statement.
  bool saw_statement = false;
  for (const obs::SpanEvent& event : events) {
    if (event.name == "engine.statement") saw_statement = true;
  }
  EXPECT_TRUE(saw_statement);
  // Dump is idempotent (a retried dump must see the same events): recording
  // stops, but the buffer survives until the next TraceStart.
  auto again = FetchServerTrace(client->get());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(obs::TraceRecorder::EventsFromJson(*again).size(), events.size());
  // TraceStart clears; statements executed before it are gone from the
  // next dump.
  ASSERT_TRUE(StartServerTrace(client->get()).ok());
  auto fresh = FetchServerTrace(client->get());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(obs::TraceRecorder::EventsFromJson(*fresh).empty());
}

TEST_F(DbServerTest, ConcurrentClients) {
  auto setup = SocketDbClient::Connect(server_->socket_path());
  ASSERT_TRUE(setup.ok());
  ASSERT_TRUE((*setup)->Query("CREATE TABLE t (a INT)").ok());
  constexpr int kThreads = 8;
  constexpr int kInsertsEach = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      auto client = SocketDbClient::Connect(server_->socket_path());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int k = 0; k < kInsertsEach; ++k) {
        if (!(*client)
                 ->Query("INSERT INTO t VALUES (" +
                         std::to_string(i * 1000 + k) + ")")
                 .ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  auto count = (*setup)->Query("SELECT count(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), kThreads * kInsertsEach);
}

TEST_F(DbServerTest, MalformedFrameGetsErrorResponseAndConnectionSurvives) {
  auto client = SocketDbClient::Connect(server_->socket_path());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Query("CREATE TABLE t (a INT)").ok());

  // Speak the framing protocol directly with a garbage payload.
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  strcpy(addr.sun_path, server_->socket_path().c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_TRUE(SendFrame(fd, "\xff\xff garbage \x01").ok());
  auto response_bytes = RecvFrame(fd);
  ASSERT_TRUE(response_bytes.ok());
  auto decoded = DecodeResponse(*response_bytes);
  EXPECT_FALSE(decoded.ok());  // server reported a decode error

  // The same raw connection can still issue a valid request afterwards.
  DbRequest ok_request;
  ok_request.sql = "SELECT count(*) FROM t";
  ASSERT_TRUE(SendFrame(fd, EncodeRequest(ok_request)).ok());
  auto second = RecvFrame(fd);
  ASSERT_TRUE(second.ok());
  auto result = DecodeResponse(*second);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows[0][0].AsInt(), 0);
  ::close(fd);
}

TEST_F(DbServerTest, OversizedFramePrefixGetsErrorResponse) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  strcpy(addr.sun_path, server_->socket_path().c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // A length prefix just past the cap; no payload follows.
  const uint32_t forged = kMaxFrameBytes + 1;
  unsigned char prefix[4] = {
      static_cast<unsigned char>(forged & 0xff),
      static_cast<unsigned char>((forged >> 8) & 0xff),
      static_cast<unsigned char>((forged >> 16) & 0xff),
      static_cast<unsigned char>((forged >> 24) & 0xff),
  };
  ASSERT_EQ(::send(fd, prefix, sizeof(prefix), 0), 4);
  auto response = RecvFrame(fd);
  ASSERT_TRUE(response.ok());
  auto decoded = DecodeResponse(*response);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("oversized frame"),
            std::string::npos);
  // Unlike a decodable-but-garbage payload, the connection is dropped: the
  // unread payload bytes make the stream unresyncable.
  char byte;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
}

TEST_F(DbServerTest, RetryingClientReconnectsAfterServerRestart) {
  auto client = RetryingDbClient::ForSocket(server_->socket_path());
  ASSERT_TRUE(client->Query("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(client->Query("INSERT INTO t VALUES (1)").ok());

  // Restart the server on the same path; the client's cached connection is
  // now dead, so the next request must transparently reconnect.
  server_->Stop();
  server_ = std::make_unique<DbServer>(engine_.get(), dir_ + "/db.sock");
  ASSERT_TRUE(server_->Start().ok());

  auto result = client->Query("SELECT count(*) FROM t");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows[0][0].AsInt(), 1);
  EXPECT_GE(client->reconnects(), 1);
}

TEST(DbServerOverloadTest, ExcessConnectionsGetCleanOverloadError) {
  auto dir = MakeTempDir("ldv_cap_");
  ASSERT_TRUE(dir.ok());
  Database db;
  EngineHandle engine(&db);
  DbServerOptions options;
  options.max_connections = 1;
  DbServer server(&engine, *dir + "/db.sock", options);
  ASSERT_TRUE(server.Start().ok());

  auto first = SocketDbClient::Connect(server.socket_path());
  ASSERT_TRUE(first.ok());
  // A served round trip guarantees the first connection is registered.
  ASSERT_TRUE((*first)->Query("CREATE TABLE t (a INT)").ok());

  // The server pushes the refusal frame on accept and hangs up, so read it
  // straight off a raw connection (a concurrent request could race the
  // close and see EPIPE instead of the frame).
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  strcpy(addr.sun_path, server.socket_path().c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  auto frame = RecvFrame(fd);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  auto refused = DecodeResponse(*frame);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kIOError);
  EXPECT_NE(refused.status().message().find("server overloaded"),
            std::string::npos);
  char byte;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);  // then EOF
  ::close(fd);
  EXPECT_GE(server.rejected_connections(), 1);

  // The connection being served keeps working.
  EXPECT_TRUE((*first)->Query("SELECT count(*) FROM t").ok());
  server.Stop();
  ASSERT_TRUE(RemoveAll(*dir).ok());
}

TEST(EngineHandleTest, SerializesConcurrentClients) {
  Database db;
  EngineHandle engine(&db);
  LocalDbClient setup(&engine);
  ASSERT_TRUE(setup.Query("CREATE TABLE t (a INT)").ok());
  constexpr int kThreads = 8;
  constexpr int kInsertsEach = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&engine, &failures, i] {
      LocalDbClient client(&engine);
      for (int k = 0; k < kInsertsEach; ++k) {
        if (!client
                 .Query("INSERT INTO t VALUES (" +
                        std::to_string(i * 1000 + k) + ")")
                 .ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  auto count = setup.Query("SELECT count(*), sum(a) FROM t");
  ASSERT_TRUE(count.ok());
  // Row count and content both intact: the engine handle serialized every
  // statement, losing and duplicating none.
  EXPECT_EQ(count->rows[0][0].AsInt(), kThreads * kInsertsEach);
  int64_t expected_sum = 0;
  for (int i = 0; i < kThreads; ++i) {
    for (int k = 0; k < kInsertsEach; ++k) expected_sum += i * 1000 + k;
  }
  EXPECT_EQ(count->rows[0][1].AsInt(), expected_sum);
}

/// Fake client that fails every request with a fixed status, counting calls
/// — proves what the retry layer does and does not re-run.
class FailingDbClient final : public DbClient {
 public:
  explicit FailingDbClient(Status status) : status_(std::move(status)) {}
  Result<exec::ResultSet> Execute(const DbRequest&) override {
    ++calls_;
    return status_;
  }
  int calls() const { return calls_; }

 private:
  Status status_;
  int calls_ = 0;
};

TEST(RetryingDbClientTest, GovernanceVerdictsAreNotRetried) {
  // A cancelled statement must not be transparently re-run: the retry would
  // resurrect exactly the work the governor killed. Same for expired
  // deadlines and blown memory budgets.
  const Status verdicts[] = {Status::Cancelled("killed"),
                             Status::DeadlineExceeded("too slow"),
                             Status::ResourceExhausted("over budget")};
  for (const Status& verdict : verdicts) {
    EXPECT_FALSE(RetryingDbClient::IsRetryable(verdict)) << verdict.ToString();
    auto failing = std::make_unique<FailingDbClient>(verdict);
    FailingDbClient* raw = failing.get();
    RetryingDbClient client(std::move(failing), nullptr, {});
    auto result = client.Query("SELECT 1");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), verdict.code());
    EXPECT_EQ(raw->calls(), 1);  // executed once, never re-run
  }
  // Transport errors stay retryable (the pre-existing contract).
  EXPECT_TRUE(RetryingDbClient::IsRetryable(Status::IOError("socket reset")));
}

TEST(SocketDbClientTest, ConnectFailure) {
  EXPECT_FALSE(SocketDbClient::Connect("/nonexistent/path.sock").ok());
}

TEST(SocketDbClientTest, MovedFromClientReportsClosed) {
  auto dir = MakeTempDir("ldv_move_");
  ASSERT_TRUE(dir.ok());
  Database db;
  EngineHandle engine(&db);
  DbServer server(&engine, *dir + "/db.sock");
  ASSERT_TRUE(server.Start().ok());
  auto client = SocketDbClient::Connect(server.socket_path());
  ASSERT_TRUE(client.ok());
  SocketDbClient moved = std::move(**client);
  EXPECT_TRUE(moved.Query("CREATE TABLE t (a INT)").ok());
  auto from_husk = (*client)->Query("SELECT 1");
  ASSERT_FALSE(from_husk.ok());
  EXPECT_EQ(from_husk.status().code(), StatusCode::kIOError);
  moved.Close();
  moved.Close();  // idempotent
  EXPECT_FALSE(moved.Query("SELECT 1").ok());
  server.Stop();
  ASSERT_TRUE(RemoveAll(*dir).ok());
}

}  // namespace
}  // namespace ldv::net
