#include <gtest/gtest.h>

#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>

#include <thread>

#include "net/db_client.h"
#include "net/db_server.h"
#include "net/protocol.h"
#include "util/fsutil.h"

namespace ldv::net {
namespace {

using storage::Database;
using storage::Value;

exec::ResultSet MakeSampleResult() {
  exec::ResultSet r;
  r.schema = storage::Schema(
      {{"id", storage::ValueType::kInt64}, {"name", storage::ValueType::kString}});
  r.rows.push_back({Value::Int(1), Value::Str("a")});
  r.rows.push_back({Value::Int(2), Value::Null()});
  r.affected = 2;
  r.has_provenance = true;
  r.lineage.push_back({{1, 10, 3}});
  r.lineage.push_back({{1, 11, 3}, {2, 4, 1}});
  exec::ProvTupleRecord prov;
  prov.vid = {1, 10, 3};
  prov.table = "t";
  prov.values = {Value::Int(10), Value::Str("x")};
  r.prov_tuples.push_back(prov);
  exec::DmlRecord dml;
  dml.kind = exec::DmlRecord::Kind::kUpdated;
  dml.table = "t";
  dml.vid = {1, 10, 4};
  dml.prior = {1, 10, 3};
  dml.has_prior = true;
  r.dml.push_back(dml);
  return r;
}

TEST(ProtocolTest, RequestRoundTrip) {
  DbRequest request;
  request.sql = "SELECT * FROM t WHERE name = 'x''y'";
  request.process_id = 42;
  request.query_id = 7;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->sql, request.sql);
  EXPECT_EQ(decoded->process_id, 42);
  EXPECT_EQ(decoded->query_id, 7);
}

TEST(ProtocolTest, ResultSetRoundTrip) {
  exec::ResultSet original = MakeSampleResult();
  auto decoded = DecodeResponse(EncodeResponse(Status::Ok(), original));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->schema.ToString(), original.schema.ToString());
  ASSERT_EQ(decoded->rows.size(), 2u);
  EXPECT_EQ(decoded->rows[0][1].AsString(), "a");
  EXPECT_TRUE(decoded->rows[1][1].is_null());
  EXPECT_EQ(decoded->affected, 2);
  ASSERT_EQ(decoded->lineage.size(), 2u);
  EXPECT_EQ(decoded->lineage[1].size(), 2u);
  EXPECT_EQ(decoded->lineage[1][1].rowid, 4);
  ASSERT_EQ(decoded->prov_tuples.size(), 1u);
  EXPECT_EQ(decoded->prov_tuples[0].table, "t");
  ASSERT_EQ(decoded->dml.size(), 1u);
  EXPECT_TRUE(decoded->dml[0].has_prior);
  EXPECT_EQ(decoded->Fingerprint(), original.Fingerprint());
}

TEST(ProtocolTest, ErrorResponseRoundTrip) {
  auto decoded =
      DecodeResponse(EncodeResponse(Status::NotFound("no such table"), {}));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(decoded.status().message(), "no such table");
}

TEST(ProtocolTest, DecodeGarbageFails) {
  EXPECT_FALSE(DecodeResponse("zz").ok());
  EXPECT_FALSE(DecodeRequest("").ok());
}

TEST(EngineHandleTest, ExecutesAndSerializes) {
  Database db;
  EngineHandle engine(&db);
  LocalDbClient client(&engine);
  ASSERT_TRUE(client.Query("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(client.Query("INSERT INTO t VALUES (1), (2)").ok());
  auto result = client.Query("SELECT count(*) FROM t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].AsInt(), 2);
  EXPECT_FALSE(client.Query("SELECT * FROM missing").ok());
}

TEST(EngineHandleTest, RequestIdsReachProvMetadata) {
  Database db;
  EngineHandle engine(&db);
  LocalDbClient client(&engine);
  ASSERT_TRUE(client.Query("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(client.Query("INSERT INTO t VALUES (1)").ok());
  DbRequest request;
  request.sql = "PROVENANCE SELECT a FROM t";
  request.process_id = 9;
  request.query_id = 33;
  ASSERT_TRUE(client.Execute(request).ok());
  auto check = client.Query("SELECT prov_usedby, prov_p FROM t");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->rows[0][0].AsInt(), 33);
  EXPECT_EQ(check->rows[0][1].AsInt(), 9);
}

class DbServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("ldv_srv_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    engine_ = std::make_unique<EngineHandle>(&db_);
    server_ = std::make_unique<DbServer>(engine_.get(), dir_ + "/db.sock");
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    server_->Stop();
    ASSERT_TRUE(RemoveAll(dir_).ok());
  }

  std::string dir_;
  Database db_;
  std::unique_ptr<EngineHandle> engine_;
  std::unique_ptr<DbServer> server_;
};

TEST_F(DbServerTest, EndToEndQueryOverSocket) {
  auto client = SocketDbClient::Connect(server_->socket_path());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE((*client)->Query("CREATE TABLE t (a INT, b TEXT)").ok());
  ASSERT_TRUE(
      (*client)->Query("INSERT INTO t VALUES (1, 'x'), (2, 'y')").ok());
  auto result = (*client)->Query("SELECT b FROM t WHERE a = 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsString(), "y");
  // Errors propagate over the wire.
  auto bad = (*client)->Query("SELECT nope FROM t");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST_F(DbServerTest, ConcurrentClients) {
  auto setup = SocketDbClient::Connect(server_->socket_path());
  ASSERT_TRUE(setup.ok());
  ASSERT_TRUE((*setup)->Query("CREATE TABLE t (a INT)").ok());
  constexpr int kThreads = 4;
  constexpr int kInsertsEach = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      auto client = SocketDbClient::Connect(server_->socket_path());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int k = 0; k < kInsertsEach; ++k) {
        if (!(*client)
                 ->Query("INSERT INTO t VALUES (" +
                         std::to_string(i * 1000 + k) + ")")
                 .ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  auto count = (*setup)->Query("SELECT count(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), kThreads * kInsertsEach);
}

TEST_F(DbServerTest, MalformedFrameGetsErrorResponseAndConnectionSurvives) {
  auto client = SocketDbClient::Connect(server_->socket_path());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Query("CREATE TABLE t (a INT)").ok());

  // Speak the framing protocol directly with a garbage payload.
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  strcpy(addr.sun_path, server_->socket_path().c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_TRUE(SendFrame(fd, "\xff\xff garbage \x01").ok());
  auto response_bytes = RecvFrame(fd);
  ASSERT_TRUE(response_bytes.ok());
  auto decoded = DecodeResponse(*response_bytes);
  EXPECT_FALSE(decoded.ok());  // server reported a decode error

  // The same raw connection can still issue a valid request afterwards.
  DbRequest ok_request;
  ok_request.sql = "SELECT count(*) FROM t";
  ASSERT_TRUE(SendFrame(fd, EncodeRequest(ok_request)).ok());
  auto second = RecvFrame(fd);
  ASSERT_TRUE(second.ok());
  auto result = DecodeResponse(*second);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows[0][0].AsInt(), 0);
  ::close(fd);
}

TEST(SocketDbClientTest, ConnectFailure) {
  EXPECT_FALSE(SocketDbClient::Connect("/nonexistent/path.sock").ok());
}

}  // namespace
}  // namespace ldv::net
