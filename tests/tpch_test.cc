#include <gtest/gtest.h>

#include "ldv/auditor.h"
#include "ldv/replayer.h"
#include "net/db_client.h"
#include "tpch/app.h"
#include "tpch/generator.h"
#include "tpch/queries.h"
#include "util/fsutil.h"

namespace ldv::tpch {
namespace {

using storage::Database;

constexpr double kTestScale = 0.002;  // 300 customers, 3000 orders

class TpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    GenOptions options;
    options.scale_factor = kTestScale;
    options.seed = 42;
    ASSERT_TRUE(Generate(db_, options).ok());
    engine_ = new net::EngineHandle(db_);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete db_;
    engine_ = nullptr;
    db_ = nullptr;
  }

  exec::ResultSet Run(const std::string& sql) {
    net::LocalDbClient client(engine_);
    auto result = client.Query(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? std::move(result).value() : exec::ResultSet{};
  }

  static Database* db_;
  static net::EngineHandle* engine_;
};

Database* TpchTest::db_ = nullptr;
net::EngineHandle* TpchTest::engine_ = nullptr;

TEST_F(TpchTest, GeneratedSizesMatchScaleFactor) {
  TpchSizes sizes = SizesFor(kTestScale);
  EXPECT_EQ(sizes.customers, 300);
  EXPECT_EQ(sizes.orders, 3000);
  EXPECT_EQ(db_->FindTable("customer")->live_row_count(), sizes.customers);
  EXPECT_EQ(db_->FindTable("orders")->live_row_count(), sizes.orders);
  int64_t lineitems = db_->FindTable("lineitem")->live_row_count();
  // Expected 4 per order, uniform [1,7].
  EXPECT_GT(lineitems, sizes.orders * 3);
  EXPECT_LT(lineitems, sizes.orders * 5);
}

TEST_F(TpchTest, GenerationIsDeterministic) {
  Database other;
  GenOptions options;
  options.scale_factor = kTestScale;
  options.seed = 42;
  ASSERT_TRUE(Generate(&other, options).ok());
  const auto& a = db_->FindTable("customer")->rows();
  const auto& b = other.FindTable("customer")->rows();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i += 37) {
    EXPECT_EQ(a[i].values, b[i].values) << "row " << i;
  }
}

TEST_F(TpchTest, KeysReferenceParents) {
  // Every order's custkey exists; every lineitem's orderkey exists.
  auto orphan_orders = Run(
      "SELECT count(*) FROM orders o WHERE o_custkey < 1 OR o_custkey > " +
      std::to_string(SizesFor(kTestScale).customers));
  EXPECT_EQ(orphan_orders.rows[0][0].AsInt(), 0);
  auto join_count = Run(
      "SELECT count(*) FROM lineitem l, orders o "
      "WHERE l.l_orderkey = o.o_orderkey");
  EXPECT_EQ(join_count.rows[0][0].AsInt(),
            db_->FindTable("lineitem")->live_row_count());
}

TEST_F(TpchTest, ExperimentQueryCatalogShape) {
  const auto& queries = ExperimentQueries();
  ASSERT_EQ(queries.size(), 18u);
  EXPECT_EQ(queries[0].id, "Q1-1");
  EXPECT_EQ(queries[17].id, "Q4-5");
  auto q23 = FindQuery("Q2-3");
  ASSERT_TRUE(q23.ok());
  EXPECT_EQ(q23->param, "00000");
  EXPECT_FALSE(FindQuery("Q9-1").ok());
}

/// Parameterized sweep: every Table II query parses, plans, and runs, and
/// Q1's measured selectivity matches the paper's Sel. column.
class QuerySweepTest : public TpchTest,
                       public ::testing::WithParamInterface<int> {};

TEST_P(QuerySweepTest, RunsAndMatchesSelectivity) {
  const QuerySpec& q = ExperimentQueries()[static_cast<size_t>(GetParam())];
  exec::ResultSet result = Run(q.sql);
  int64_t lineitems = db_->FindTable("lineitem")->live_row_count();

  if (q.family == 1) {
    // Selection on lineitem: fraction of qualifying rows ~ selectivity.
    double measured = static_cast<double>(result.rows.size()) /
                      static_cast<double>(lineitems);
    EXPECT_NEAR(measured, q.selectivity, q.selectivity * 0.30 + 0.002)
        << q.id;
  }
  if (q.family == 3) {
    ASSERT_EQ(result.rows.size(), 1u);  // count(*)
    double measured = static_cast<double>(result.rows[0][0].AsInt()) /
                      static_cast<double>(lineitems);
    // LIKE-family selectivity: generous tolerance at tiny scale; the two
    // dense variants must straddle the sparse ones.
    EXPECT_NEAR(measured, q.selectivity,
                q.selectivity * 0.5 + 0.01)
        << q.id;
  }
  if (q.family == 2) {
    EXPECT_EQ(result.schema.num_columns(), 2);
  }
  if (q.family == 4) {
    EXPECT_EQ(result.schema.column(1).name, "avgQ");
    for (const auto& row : result.rows) {
      double avg = row[1].AsDouble();
      EXPECT_GE(avg, 1.0);
      EXPECT_LE(avg, 50.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, QuerySweepTest, ::testing::Range(0, 18));

TEST_F(TpchTest, LikeSelectivityIsMonotoneInZeros) {
  int64_t previous = -1;
  for (const char* param : {"0000000", "000000", "00000", "0000"}) {
    auto count = Run(
        "SELECT count(*) FROM customer WHERE c_name LIKE '%" +
        std::string(param) + "%'");
    int64_t n = count.rows[0][0].AsInt();
    EXPECT_GE(n, previous);
    previous = n;
  }
  EXPECT_GT(previous, 0);
}

TEST_F(TpchTest, CsvExportMatchesDirectGeneration) {
  auto dir = MakeTempDir("ldv_tpch_csv_");
  ASSERT_TRUE(dir.ok());
  GenOptions options;
  options.scale_factor = 0.0005;
  options.seed = 9;
  ASSERT_TRUE(GenerateCsv(*dir, options).ok());

  Database db;
  ASSERT_TRUE(CreateTpchSchema(&db).ok());
  net::EngineHandle engine(&db);
  net::LocalDbClient client(&engine);
  for (const char* table : {"customer", "orders", "lineitem"}) {
    auto loaded = client.Query(std::string("COPY ") + table + " FROM '" +
                               JoinPath(*dir, std::string(table) + ".csv") +
                               "'");
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  }
  Database direct;
  ASSERT_TRUE(Generate(&direct, options).ok());
  for (const char* table : {"customer", "orders", "lineitem"}) {
    EXPECT_EQ(db.FindTable(table)->live_row_count(),
              direct.FindTable(table)->live_row_count())
        << table;
  }
  // Spot-check value equality through the CSV round trip.
  const auto& via_csv = db.FindTable("orders")->rows();
  const auto& in_memory = direct.FindTable("orders")->rows();
  for (size_t i = 0; i < via_csv.size(); i += 101) {
    EXPECT_EQ(via_csv[i].values, in_memory[i].values) << "orders row " << i;
  }
  ASSERT_TRUE(RemoveAll(*dir).ok());
}

TEST(TpchAppTest, ExperimentAppAuditsAndReplaysEndToEnd) {
  auto base = MakeTempDir("ldv_tpch_app_");
  ASSERT_TRUE(base.ok());
  Database db;
  GenOptions gen;
  gen.scale_factor = 0.001;
  ASSERT_TRUE(Generate(&db, gen).ok());
  TpchSizes sizes = SizesFor(gen.scale_factor);

  AppOptions app_options;
  auto q = FindQuery("Q1-2");
  ASSERT_TRUE(q.ok());
  app_options.query_sql = q->sql;
  app_options.num_inserts = 50;
  app_options.num_selects = 10;
  app_options.num_updates = 10;
  app_options.insert_orderkey_base = sizes.orders;
  app_options.update_orderkey_max = sizes.orders;
  app_options.customer_max = sizes.customers;

  StepTimings original;
  AuditOptions audit_options;
  audit_options.mode = PackageMode::kServerExcluded;
  audit_options.package_dir = *base + "/pkg";
  audit_options.sandbox_root = *base + "/sandbox";
  ASSERT_TRUE(MakeDirs(audit_options.sandbox_root).ok());
  Auditor auditor(&db, audit_options);
  auto audit = auditor.Run(MakeExperimentApp(app_options, &original));
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  EXPECT_EQ(audit->statements_audited, 50 + 10 + 10);
  EXPECT_GT(original.rows_returned, 0);
  EXPECT_GT(original.first_select_seconds, 0);

  StepTimings replayed;
  ReplayOptions replay_options;
  replay_options.package_dir = *base + "/pkg";
  replay_options.scratch_dir = *base + "/scratch";
  auto replayer = Replayer::Open(replay_options);
  ASSERT_TRUE(replayer.ok()) << replayer.status().ToString();
  auto report = (*replayer)->Run(MakeExperimentApp(app_options, &replayed));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(replayed.result_fingerprint, original.result_fingerprint);
  EXPECT_EQ(replayed.rows_returned, original.rows_returned);
  ASSERT_TRUE(RemoveAll(*base).ok());
}

}  // namespace
}  // namespace ldv::tpch
