#include <gtest/gtest.h>

#include "exec/executor.h"
#include "storage/database.h"
#include "util/fsutil.h"

namespace ldv::exec {
namespace {

using storage::Database;
using storage::Table;
using storage::Value;

class ExecDmlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    exec_ = std::make_unique<Executor>(&db_);
    Run("CREATE TABLE t (id INT, qty INT, note TEXT)");
    Run("INSERT INTO t VALUES (1, 10, 'a'), (2, 20, 'b'), (3, 30, 'c')");
    db_.FindTable("t")->set_provenance_tracking(true);
  }

  ResultSet Run(const std::string& sql, bool provenance = false) {
    std::string full = provenance ? "PROVENANCE " + sql : sql;
    auto result = exec_->Execute(full, {});
    EXPECT_TRUE(result.ok()) << full << " -> " << result.status().ToString();
    return result.ok() ? std::move(result).value() : ResultSet{};
  }

  Database db_;
  std::unique_ptr<Executor> exec_;
};

TEST_F(ExecDmlTest, InsertReportsCreatedVersions) {
  ResultSet r = Run("INSERT INTO t VALUES (4, 40, 'd'), (5, 50, 'e')");
  EXPECT_EQ(r.affected, 2);
  ASSERT_EQ(r.dml.size(), 2u);
  EXPECT_EQ(r.dml[0].kind, DmlRecord::Kind::kInserted);
  EXPECT_EQ(r.dml[0].table, "t");
  EXPECT_FALSE(r.dml[0].has_prior);
  // Both rows carry the same statement sequence (version stamp).
  EXPECT_EQ(r.dml[0].vid.version, r.dml[1].vid.version);
  EXPECT_NE(r.dml[0].vid.rowid, r.dml[1].vid.rowid);
}

TEST_F(ExecDmlTest, InsertWithColumnListAndDefaults) {
  ResultSet r = Run("INSERT INTO t (id, note) VALUES (9, 'z')");
  EXPECT_EQ(r.affected, 1);
  ResultSet check = Run("SELECT qty FROM t WHERE id = 9");
  EXPECT_TRUE(check.rows[0][0].is_null());
}

TEST_F(ExecDmlTest, InsertCoercesIntToDouble) {
  Run("CREATE TABLE d (x DOUBLE)");
  Run("INSERT INTO d VALUES (3)");
  ResultSet r = Run("SELECT x FROM d");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 3.0);
}

TEST_F(ExecDmlTest, InsertSelectCopiesRows) {
  Run("CREATE TABLE t2 (id INT, qty INT, note TEXT)");
  ResultSet r = Run("INSERT INTO t2 SELECT id, qty, note FROM t WHERE qty > 15");
  EXPECT_EQ(r.affected, 2);
  EXPECT_EQ(Run("SELECT * FROM t2").rows.size(), 2u);
}

TEST_F(ExecDmlTest, UpdateCreatesNewVersionAndArchivesOld) {
  ResultSet r = Run("UPDATE t SET qty = qty + 5 WHERE id = 2", true);
  EXPECT_EQ(r.affected, 1);
  ASSERT_EQ(r.dml.size(), 1u);
  EXPECT_EQ(r.dml[0].kind, DmlRecord::Kind::kUpdated);
  ASSERT_TRUE(r.dml[0].has_prior);
  EXPECT_EQ(r.dml[0].vid.rowid, r.dml[0].prior.rowid);
  EXPECT_GT(r.dml[0].vid.version, r.dml[0].prior.version);

  // Reenactment: the prior version's values are returned as provenance.
  ASSERT_EQ(r.prov_tuples.size(), 1u);
  EXPECT_EQ(r.prov_tuples[0].values[1].AsInt(), 20);
  EXPECT_EQ(r.prov_tuples[0].vid, r.dml[0].prior);

  EXPECT_EQ(Run("SELECT qty FROM t WHERE id = 2").rows[0][0].AsInt(), 25);
  Table* table = db_.FindTable("t");
  ASSERT_EQ(table->archive().size(), 1u);
  EXPECT_EQ(table->archive()[0].values[1].AsInt(), 20);
}

TEST_F(ExecDmlTest, UpdateWithoutWhereTouchesAllRows) {
  ResultSet r = Run("UPDATE t SET note = 'all'");
  EXPECT_EQ(r.affected, 3);
  EXPECT_EQ(Run("SELECT count(*) FROM t WHERE note = 'all'").rows[0][0].AsInt(),
            3);
}

TEST_F(ExecDmlTest, UpdateSetFromOldValuesAcrossColumns) {
  Run("UPDATE t SET qty = id * 100, note = note || '!' WHERE id = 3");
  ResultSet r = Run("SELECT qty, note FROM t WHERE id = 3");
  EXPECT_EQ(r.rows[0][0].AsInt(), 300);
  EXPECT_EQ(r.rows[0][1].AsString(), "c!");
}

TEST_F(ExecDmlTest, DeleteReportsRemovedVersions) {
  ResultSet r = Run("DELETE FROM t WHERE qty >= 20", true);
  EXPECT_EQ(r.affected, 2);
  ASSERT_EQ(r.dml.size(), 2u);
  EXPECT_EQ(r.dml[0].kind, DmlRecord::Kind::kDeleted);
  EXPECT_EQ(r.prov_tuples.size(), 2u);
  EXPECT_EQ(Run("SELECT count(*) FROM t").rows[0][0].AsInt(), 1);
  EXPECT_EQ(db_.FindTable("t")->archive().size(), 2u);
}

TEST_F(ExecDmlTest, UpdatedTupleGetsFreshVersionVisibleInProvColumns) {
  ResultSet before = Run("SELECT prov_v FROM t WHERE id = 1");
  Run("UPDATE t SET qty = 11 WHERE id = 1");
  ResultSet after = Run("SELECT prov_v FROM t WHERE id = 1");
  EXPECT_GT(after.rows[0][0].AsInt(), before.rows[0][0].AsInt());
}

TEST_F(ExecDmlTest, AlterTableAddColumn) {
  Run("ALTER TABLE t ADD COLUMN extra DOUBLE");
  ResultSet r = Run("SELECT extra FROM t WHERE id = 1");
  EXPECT_TRUE(r.rows[0][0].is_null());
  Run("UPDATE t SET extra = 1.5 WHERE id = 1");
  EXPECT_DOUBLE_EQ(
      Run("SELECT extra FROM t WHERE id = 1").rows[0][0].AsDouble(), 1.5);
}

TEST_F(ExecDmlTest, CopyFromAndToCsv) {
  auto dir = MakeTempDir("ldv_copy_");
  ASSERT_TRUE(dir.ok());
  std::string out_path = JoinPath(*dir, "dump.csv");
  ResultSet dumped = Run("COPY t TO '" + out_path + "'");
  EXPECT_EQ(dumped.affected, 3);

  Run("CREATE TABLE t_copy (id INT, qty INT, note TEXT)");
  ResultSet loaded = Run("COPY t_copy FROM '" + out_path + "'");
  EXPECT_EQ(loaded.affected, 3);
  EXPECT_EQ(Run("SELECT count(*) FROM t_copy").rows[0][0].AsInt(), 3);
  EXPECT_EQ(Run("SELECT note FROM t_copy WHERE id = 2").rows[0][0].AsString(),
            "b");
  ASSERT_TRUE(RemoveAll(*dir).ok());
}

TEST_F(ExecDmlTest, TransactionsAreAcceptedNoOps) {
  Run("BEGIN");
  Run("INSERT INTO t VALUES (7, 70, 'g')");
  Run("COMMIT");
  EXPECT_EQ(Run("SELECT count(*) FROM t").rows[0][0].AsInt(), 4);
}

TEST_F(ExecDmlTest, DmlErrors) {
  EXPECT_FALSE(exec_->Execute("INSERT INTO nope VALUES (1)", {}).ok());
  EXPECT_FALSE(exec_->Execute("INSERT INTO t VALUES (1)", {}).ok());
  EXPECT_FALSE(exec_->Execute("UPDATE t SET missing = 1", {}).ok());
  EXPECT_FALSE(exec_->Execute("DELETE FROM nope", {}).ok());
  EXPECT_FALSE(
      exec_->Execute("INSERT INTO t (id, nope) VALUES (1, 2)", {}).ok());
  EXPECT_FALSE(exec_->Execute("COPY t FROM '/does/not/exist.csv'", {}).ok());
}

TEST_F(ExecDmlTest, CreateTableIfNotExists) {
  Run("CREATE TABLE IF NOT EXISTS t (id INT)");  // exists, no error
  EXPECT_FALSE(exec_->Execute("CREATE TABLE t (id INT)", {}).ok());
  Run("DROP TABLE IF EXISTS never_there");
  EXPECT_FALSE(exec_->Execute("DROP TABLE never_there", {}).ok());
}

}  // namespace
}  // namespace ldv::exec
